"""Integration tests for distributed session consistency across executors."""


from repro import CloudburstCluster, ConsistencyLevel
from repro.anna import AnnaCluster
from repro.cloudburst import AnomalyTracker


def make_cluster(level, **kwargs):
    return CloudburstCluster(executor_vms=3, threads_per_vm=2, consistency=level,
                             seed=17, **kwargs)


class TestRepeatableReadAcrossExecutors:
    def test_dag_reads_one_consistent_version_despite_interleaved_writes(self):
        cluster = make_cluster(ConsistencyLevel.DISTRIBUTED_SESSION_RR,
                               anna_propagation=AnnaCluster.PROPAGATE_PERIODIC)
        cloud = cluster.connect()
        cloud.put("shared", "v0")

        observed = []

        def read_then_update(cloudburst, key):
            value = cloudburst.get(key)
            observed.append(value)
            # Another client sneaks in a write between the DAG's functions.
            cluster.connect("interloper").put(key, f"overwritten-{len(observed)}")
            return value

        def read_again(cloudburst, upstream_value, key):
            value = cloudburst.get(key)
            observed.append(value)
            return (upstream_value, value)

        cloud.register(read_then_update, name="first_read")
        cloud.register(read_again, name="second_read")
        cloud.register_dag("rr-session", ["first_read", "second_read"],
                           [("first_read", "second_read")])
        for _ in range(5):
            observed.clear()
            result = cloud.call_dag("rr-session", {"first_read": ["shared"],
                                                   "second_read": ["shared"]})
            upstream_value, downstream_value = result.value
            assert upstream_value == downstream_value, \
                "repeatable read must pin one version for the whole DAG"

    def test_lww_mode_can_observe_different_versions(self):
        """Control experiment: without the protocol the anomaly is possible."""
        cluster = make_cluster(ConsistencyLevel.LWW,
                               anna_propagation=AnnaCluster.PROPAGATE_PERIODIC)
        cloud = cluster.connect()
        cloud.put("shared", "v0")

        def read_then_update(cloudburst, key):
            value = cloudburst.get(key)
            cluster.connect("interloper").put(key, f"new-{value}")
            cluster.kvs.flush_updates()
            return value

        def read_again(cloudburst, upstream_value, key):
            return (upstream_value, cloudburst.get(key))

        cloud.register(read_then_update, name="first_read")
        cloud.register(read_again, name="second_read")
        cloud.register_dag("lww-session", ["first_read", "second_read"],
                           [("first_read", "second_read")])
        mismatches = 0
        for _ in range(10):
            upstream_value, downstream_value = cloud.call_dag(
                "lww-session", {"first_read": ["shared"],
                                "second_read": ["shared"]}).value
            if upstream_value != downstream_value:
                mismatches += 1
        assert mismatches > 0


class TestCausalSessionAcrossExecutors:
    def test_write_then_read_your_causal_history(self):
        cluster = make_cluster(ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        cloud = cluster.connect()
        cloud.put("profile", {"version": 0})
        cloud.put("timeline", [])

        def update_profile(cloudburst):
            profile = cloudburst.get("profile")
            cloudburst.put("profile", {"version": profile["version"] + 1})
            cloudburst.put("timeline", ["profile updated"])
            return True

        def render(cloudburst, _upstream):
            timeline = cloudburst.get("timeline")
            profile = cloudburst.get("profile")
            return (profile, timeline)

        cloud.register(update_profile, name="update_profile")
        cloud.register(render, name="render")
        cloud.register_dag("causal-session", ["update_profile", "render"],
                           [("update_profile", "render")])
        profile, timeline = cloud.call_dag("causal-session").value
        # The render step must see the session's own writes (or newer).
        assert profile["version"] >= 1
        assert timeline == ["profile updated"]

    def test_causal_mode_exposes_concurrent_versions_to_applications(self):
        cluster = make_cluster(ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        # Two writers race: neither saw the other's version before writing, so
        # Anna retains both as concurrent siblings.
        from repro.cloudburst import LatticeEncapsulator

        writer_a = LatticeEncapsulator("writer-a",
                                       ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        writer_b = LatticeEncapsulator("writer-b",
                                       ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        cluster.kvs.put("doc", writer_a.encapsulate("version-from-a"))
        cluster.kvs.put("doc", writer_b.encapsulate("version-from-b"))

        def read_all(cloudburst, key):
            return cloudburst.get_all_versions(key)

        reader = cluster.connect("reader",
                                 consistency=ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        reader.register(read_all, name="read_all")
        versions = reader.call("read_all", ["doc"]).value
        assert set(versions) == {"version-from-a", "version-from-b"}
        # The single-version API still returns a deterministic winner.
        single = reader.register(lambda cloudburst, key: cloudburst.get(key),
                                 name="read_one")
        assert single("doc") in versions


class TestAnomalyTrackingEndToEnd:
    def test_lww_execution_with_tracker_counts_anomalies(self):
        tracker = AnomalyTracker()
        cluster = CloudburstCluster(
            executor_vms=3, threads_per_vm=2, consistency=ConsistencyLevel.LWW,
            seed=5, anomaly_tracker=tracker,
            anna_propagation=AnnaCluster.PROPAGATE_PERIODIC)
        cloud = cluster.connect()
        cloud.put("x", "seed")

        def read_write(cloudburst, key):
            value = cloudburst.get(key)
            cloudburst.put(key, f"updated-by-{cloudburst.get_id()}")
            return value

        cloud.register(read_write, name="read_write")
        for index in range(30):
            cloud.call("read_write", ["x"])
            if index % 5 == 0:
                cluster.kvs.flush_updates()
        assert tracker.report.executions == 30
        assert tracker.report.single_key > 0
