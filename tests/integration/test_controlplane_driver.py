"""Integration tests for the engine-driven compute control plane.

These pin the acceptance properties of the control-plane extraction:

* the full §4.4 loop (periodic metric publishes -> KVS aggregation ->
  scale decisions -> actuation with pin migration) runs as recurring engine
  events and scales a *real* cluster up under load and back down after it;
* seeded runs are deterministic — identical capacity/node timelines and an
  identical migration log across two runs;
* attaching a publish-only control plane (autoscaling disabled) to a
  1-client engine run changes **no** latency sample versus the sequential
  path: control-plane traffic is uncharged background load.
"""

import pytest

from repro.bench.harness import (
    EngineLoadDriver,
    run_closed_loop,
    run_engine_closed_loop,
)
from repro.cloudburst import CloudburstCluster
from repro.cloudburst.controlplane import ComputeControlPlane
from repro.cloudburst.monitoring import MonitoringConfig


def _make_cluster(seed=11, executor_vms=2, threads_per_vm=3):
    cluster = CloudburstCluster(executor_vms=executor_vms,
                                threads_per_vm=threads_per_vm, seed=seed)
    cloud = cluster.connect("setup")

    def work(cloudburst, x):
        cloudburst.simulate_compute(20.0)
        return x * 2

    cloud.register(work, name="work")
    cluster.schedulers[0].pin_function("work", replicas=3)
    return cluster, cloud


def _work_request(cloud, ctx, index):
    return cloud.call("work", [index], ctx=ctx)


def _autoscaled_run(seed):
    cluster, _ = _make_cluster(seed=seed, executor_vms=2)
    config = MonitoringConfig(vms_per_scale_up=1,
                              node_startup_delay_ms=2_000.0,
                              max_vms=8)
    control = ComputeControlPlane(cluster, config=config,
                                  policy_interval_ms=1_000.0,
                                  min_threads=config.min_pinned_threads)
    driver = EngineLoadDriver(
        cluster, _work_request, clients=20,
        stop_ms=10_000.0, max_duration_ms=15_000.0,
        control_plane=control)
    sim = driver.run()
    return sim, control, cluster


class TestControlPlaneLoop:
    def test_scales_up_under_load_and_drains_after(self):
        sim, control, cluster = _autoscaled_run(seed=23)
        capacities = [capacity for _, capacity in sim.capacity_timeline]
        assert capacities[0] == 6
        assert max(capacities) > 6            # scale-up really added VMs
        assert len(cluster.vms) > 2
        assert capacities[-1] == control.config.min_pinned_threads  # drained
        # The loop genuinely ran on the engine: publishes and policy ticks.
        assert control.publisher.published_ticks > 5
        assert len(control.history) > 5
        # Delayed scale-ups report back into their originating tick's entry.
        assert sum(r.vms_added for r in control.history) > 0

    def test_scale_down_migrates_pins_and_routes_no_drained_calls(self):
        _sim, control, cluster = _autoscaled_run(seed=23)
        assert len(control.migrations) > 0    # §4.4 pin migration observable
        assert control.autoscaler.calls_routed_to_drained() == 0
        # Migrated pins point at live threads only.
        scheduler = cluster.schedulers[0]
        live_ids = {t.thread_id for t in scheduler._live_threads()}
        for pins in scheduler.function_pins.values():
            assert set(pins) <= live_ids

    def test_deprecated_policy_kwarg_builds_the_real_control_plane(self):
        from repro.cloudburst.monitoring import AutoscalingPolicy

        cluster, _ = _make_cluster(seed=23, executor_vms=2)
        config = MonitoringConfig(vms_per_scale_up=1,
                                  node_startup_delay_ms=2_000.0, max_vms=8)
        driver = EngineLoadDriver(
            cluster, _work_request, clients=20,
            stop_ms=10_000.0, max_duration_ms=15_000.0,
            policy=AutoscalingPolicy(config), policy_interval_ms=1_000.0,
            min_threads=config.min_pinned_threads)
        assert isinstance(driver.control_plane, ComputeControlPlane)
        sim = driver.run()
        capacities = [capacity for _, capacity in sim.capacity_timeline]
        assert max(capacities) > 6
        assert capacities[-1] == config.min_pinned_threads

    def test_policy_and_control_plane_are_mutually_exclusive(self):
        cluster, _ = _make_cluster(seed=3)
        with pytest.raises(ValueError):
            EngineLoadDriver(
                cluster, _work_request, clients=1, max_requests=4,
                max_duration_ms=5_000.0,
                policy=lambda now, metrics: None,
                control_plane=ComputeControlPlane(cluster))

    def test_autoscaling_control_plane_needs_finite_duration(self):
        cluster, _ = _make_cluster(seed=3)
        with pytest.raises(ValueError):
            EngineLoadDriver(cluster, _work_request, clients=1,
                             max_requests=10,
                             control_plane=ComputeControlPlane(cluster))


class TestControlPlaneDeterminism:
    def test_same_seed_identical_timelines_and_migration_log(self):
        sim_a, control_a, _ = _autoscaled_run(seed=13)
        sim_b, control_b, _ = _autoscaled_run(seed=13)
        assert sim_a.capacity_timeline == sim_b.capacity_timeline
        assert control_a.node_count_timeline == control_b.node_count_timeline
        assert (control_a.autoscaler.migration_log()
                == control_b.autoscaler.migration_log())
        assert sim_a.latencies.samples_ms == sim_b.latencies.samples_ms

    def test_different_seed_differs(self):
        sim_a, _, _ = _autoscaled_run(seed=13)
        sim_b, _, _ = _autoscaled_run(seed=14)
        assert sim_a.latencies.samples_ms != sim_b.latencies.samples_ms


class TestControlPlaneParity:
    def test_publish_only_control_plane_changes_no_latency_sample(self):
        # Sequential reference run.
        _cluster_a, cloud_a = _make_cluster(seed=21)
        sequential = run_closed_loop(
            "sequential", lambda i: cloud_a.call("work", [i]).latency_ms, 40)

        # 1-client engine run with the control plane attached but autoscaling
        # disabled: metrics publish and aggregate on the engine timeline, yet
        # every sample must match — control-plane traffic is uncharged,
        # unqueued background load.
        cluster_b, _cloud_b = _make_cluster(seed=21)
        control = ComputeControlPlane(cluster_b, autoscaling=False,
                                      policy_interval_ms=500.0)
        driver = EngineLoadDriver(cluster_b, _work_request, clients=1,
                                  max_requests=40, control_plane=control)
        engine_run = driver.run()

        assert engine_run.latencies.samples_ms == \
            pytest.approx(sequential.samples_ms)
        # The loop really ran (publishes happened on the shared timeline).
        assert control.publisher.published_ticks > 0
        # ...and observed the cluster without touching it.
        assert control.autoscaler.scale_up_events == 0
        assert control.autoscaler.threads_drained_total == 0
