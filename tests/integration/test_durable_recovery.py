"""Integration tests: crash/restart recovery through the durable SQLite tier.

Two layers.  The cluster layer checks that ``crash_node`` loses exactly the
volatile state (memory tier, stats) while the restarted node recovers every
demoted key from its per-node SQLite table byte-for-byte.  The bench layer
runs the seeded ``storage_drop`` fault class with the durable tier enabled
and asserts the §4.5 oracle — including the new "every cold key on disk at
crash time was recovered" requirement — stays green, deterministically.
"""

from repro.anna import AnnaCluster
from repro.bench import fault_recovery_errors, run_fault_recovery
from repro.lattices import LWWLattice, Timestamp


def lww(value, clock=1.0, node="n"):
    return LWWLattice(Timestamp(clock, node), value)


class TestClusterCrashRestart:
    def _cluster(self, tmp_path):
        return AnnaCluster(node_count=3, replication_factor=2,
                           memory_capacity_keys=4,
                           durable_path=tmp_path / "cold.sqlite")

    def test_crash_then_restart_recovers_every_demoted_key(self, tmp_path):
        cluster = self._cluster(tmp_path)
        for i in range(40):
            cluster.put(f"key-{i:02d}", lww(i, clock=float(i + 1)))

        victim = cluster.node_ids[0]
        node = cluster.node(victim)
        cold_before = set(node.cold_tier.keys())
        payloads_before = {key: node.cold_tier.raw_payload(key)
                           for key in cold_before}
        assert cold_before, "capacity pressure should have demoted keys"

        lost = cluster.crash_node(victim)
        assert lost == len(cold_before)
        assert cluster.cold_keys_at_crash == len(cold_before)

        recovered = cluster.restart_node(victim)
        assert recovered == len(cold_before)
        restarted = cluster.node(victim)
        for key in cold_before:
            assert restarted.cold_tier.raw_payload(key) == payloads_before[key]

        # No acknowledged write is lost anywhere in the cluster.
        for i in range(40):
            assert cluster.get(f"key-{i:02d}").reveal() == i

    def test_durable_stats_track_crash_and_recovery(self, tmp_path):
        cluster = self._cluster(tmp_path)
        for i in range(30):
            cluster.put(f"key-{i:02d}", lww(i))
        victim = cluster.node_ids[0]
        cluster.crash_node(victim)
        cluster.restart_node(victim)

        stats = cluster.durable_stats()
        assert stats["enabled"] is True
        assert stats["crashes"] == 1
        assert stats["cold_keys_at_crash"] > 0
        assert stats["cold_keys_recovered"] >= stats["cold_keys_at_crash"]
        assert stats["demotions"] > 0

    def test_without_durable_path_stats_report_disabled(self):
        cluster = AnnaCluster(node_count=2)
        assert cluster.has_durable_tier() is False
        assert cluster.durable_stats()["enabled"] is False


class TestDurableFaultMatrix:
    def test_storage_drop_oracle_green_with_durable_tier(self, tmp_path):
        section = run_fault_recovery(
            seed=7, request_count=80, clients=6,
            fault_classes=("storage_drop",), determinism_check=True,
            durable_dir=tmp_path, memory_capacity_keys=48)
        assert fault_recovery_errors(section) == []

        entry = section["classes"]["storage_drop"]
        durable = entry["durable"]
        assert durable["enabled"] is True
        assert durable["crashes"] > 0
        assert durable["cold_keys_at_crash"] > 0
        assert durable["cold_keys_recovered"] >= durable["cold_keys_at_crash"]

        determinism = section["determinism"]
        assert determinism["timeline_match"] is True
        assert determinism["anomalies_match"] is True

    def test_lost_cold_keys_fail_the_oracle(self, tmp_path):
        section = run_fault_recovery(
            seed=7, request_count=80, clients=6,
            fault_classes=("storage_drop",), determinism_check=False,
            durable_dir=tmp_path, memory_capacity_keys=48)
        durable = section["classes"]["storage_drop"]["durable"]
        durable["cold_keys_recovered"] = durable["cold_keys_at_crash"] - 1
        errors = fault_recovery_errors(section)
        assert any("lost" in e for e in errors)

    def test_vacuous_durable_run_fails_the_oracle(self, tmp_path):
        section = run_fault_recovery(
            seed=7, request_count=80, clients=6,
            fault_classes=("storage_drop",), determinism_check=False,
            durable_dir=tmp_path, memory_capacity_keys=48)
        durable = section["classes"]["storage_drop"]["durable"]
        durable["cold_keys_at_crash"] = 0
        errors = fault_recovery_errors(section)
        assert any("never exercised" in e for e in errors)
