"""End-to-end integration tests: the full client → scheduler → executor →
cache → Anna request path, mirroring the programming interface of §3."""

import pytest

from repro import CloudburstCluster, CloudburstReference, ConsistencyLevel


@pytest.fixture
def cluster():
    return CloudburstCluster(executor_vms=3, threads_per_vm=3, scheduler_count=2,
                             anna_nodes=4, seed=42)


@pytest.fixture
def cloud(cluster):
    return cluster.connect()


class TestFigure2Script:
    """The exact interaction pattern of the paper's Figure 2 example."""

    def test_figure2_flow(self, cloud):
        cloud.put("key", 2)
        reference = CloudburstReference("key")
        sq = cloud.register(lambda x: x * x, name="square")
        assert sq(reference) == 4
        future = sq(3, store_in_kvs=True)
        assert future.get() == 9


class TestStatefulFunctions:
    def test_function_state_shared_through_kvs(self, cloud):
        def writer(cloudburst, key, value):
            cloudburst.put(key, value)
            return True

        def reader(cloudburst, key):
            return cloudburst.get(key)

        cloud.register(writer, name="writer")
        cloud.register(reader, name="reader")
        assert cloud.call("writer", ["shared", {"n": 1}]).value
        assert cloud.call("reader", ["shared"]).value == {"n": 1}

    def test_composition_through_dag(self, cloud):
        cloud.register(lambda x: x + 1, name="increment")
        cloud.register(lambda x: x * x, name="square")
        cloud.register_dag("composition", ["increment", "square"],
                           [("increment", "square")])
        result = cloud.call_dag("composition", {"increment": [4]})
        assert result.value == 25
        assert result.latency_ms > 0

    def test_repeated_execution_reuses_cached_functions(self, cluster, cloud):
        cloud.register(lambda x: x, name="echo")
        cloud.register_dag("echo-dag", ["echo"])
        for index in range(20):
            assert cloud.call_dag("echo-dag", {"echo": [index]}).value == index
        # The function body is fetched/deserialized at most once per executor.
        fetches = sum(
            1 for vm in cluster.vms for thread in vm.threads
            if thread.has_function("echo"))
        assert fetches <= cluster.total_threads()

    def test_direct_communication_between_invocations(self, cluster, cloud):
        def advertise(cloudburst, mailbox_key):
            cloudburst.put(mailbox_key, cloudburst.get_id())
            return cloudburst.get_id()

        def send_to(cloudburst, mailbox_key, message):
            recipient = cloudburst.get(mailbox_key)
            return cloudburst.send(recipient, message)

        cloud.register(advertise, name="advertise")
        cloud.register(send_to, name="send_to")
        advertiser_id = cloud.call("advertise", ["mailbox"]).value
        assert cloud.call("send_to", ["mailbox", "hello"]).value is True
        assert cluster.router.recv(advertiser_id) == ["hello"]


class TestLocalityAndCaching:
    def test_reference_heavy_workload_hits_caches(self, cluster, cloud):
        cloud.put("big-object", list(range(10_000)))
        cloud.register(lambda data: len(data), name="measure")
        reference = CloudburstReference("big-object")
        first = cloud.call("measure", [reference])
        latencies = [cloud.call("measure", [reference]).latency_ms for _ in range(10)]
        assert first.value == 10_000
        assert cluster.cache_hit_rate() > 0.5
        # Warm calls should generally not be slower than the cold call.
        assert min(latencies) <= first.latency_ms * 1.5

    def test_data_written_by_functions_visible_to_clients(self, cloud):
        def accumulate(cloudburst, key, amount):
            try:
                current = cloudburst.get(key)
            except Exception:
                current = 0
            cloudburst.put(key, current + amount)
            return current + amount

        cloud.register(accumulate, name="accumulate")
        for expected in (5, 10, 15):
            assert cloud.call("accumulate", ["counter", 5]).value == expected
        assert cloud.get("counter") == 15


class TestMultipleClientsAndSchedulers:
    def test_clients_share_state_and_functions(self, cluster):
        alice = cluster.connect("alice")
        bob = cluster.connect("bob")
        alice.put("greeting", "hi from alice")
        assert bob.get("greeting") == "hi from alice"
        alice.register(lambda s: s.upper(), name="shout")
        assert bob.call("shout", ["quiet"]).value == "QUIET"

    def test_consistency_level_override_per_call(self, cloud):
        cloud.register(lambda x: x, name="echo")
        result = cloud.call("echo", [1],
                            consistency=ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        assert result.value == 1
        assert result.session.level == ConsistencyLevel.DISTRIBUTED_SESSION_RR


class TestLatencyAccounting:
    def test_latency_includes_scheduling_and_execution(self, cloud):
        cloud.register(lambda: "ok", name="noop")
        result = cloud.call("noop")
        breakdown = result.ctx.breakdown()
        assert ("cloudburst", "client_to_scheduler") in breakdown
        assert ("cloudburst", "invoke") in breakdown
        assert result.latency_ms >= sum(
            v for (service, _), v in breakdown.items() if service == "cloudburst") * 0.5

    def test_simulated_compute_dominates_for_heavy_functions(self, cloud):
        def heavy(cloudburst):
            cloudburst.simulate_compute(200.0)
            return True

        cloud.register(heavy, name="heavy")
        result = cloud.call("heavy")
        assert result.latency_ms > 150.0
