"""Determinism and parity pins for the optimized discrete-event engine.

The engine optimization pass (tuple-keyed heap, O(1) pending counters,
tombstone compaction, heap-based FIFO server selection, allocation-light
charge accounting) must be *observationally invisible*: same event order,
same latency samples, same event counts.  These tests pin that:

* a seeded engine-driver run replays identically (event-for-event and
  sample-for-sample) across two fresh clusters;
* the Figure 5 engine path with one client still reproduces the sequential
  cross-check sample-for-sample;
* ``record_charges=False`` (the load drivers' allocation-light mode) changes
  no latency sample and no engine event count — only the itemised charge log.
"""

import pytest

from repro.bench import run_figure5
from repro.bench.harness import EngineLoadDriver
from repro.cloudburst import CloudburstCluster


def _cluster(seed=11):
    cluster = CloudburstCluster(executor_vms=3, threads_per_vm=2, seed=seed)
    cloud = cluster.connect()
    cloud.put("shared", 0)

    def bump(cloudburst, key, index):
        value = cloudburst.get(key)
        cloudburst.put(key, index)
        return value

    cloud.register(bump, name="bump")
    return cluster


def _drive(seed=11, record_charges=True, clients=4, requests=48):
    cluster = _cluster(seed=seed)

    def request(cloud, ctx, index):
        return cloud.call("bump", ["shared", index], ctx=ctx)

    driver = EngineLoadDriver(cluster, request, clients=clients,
                              max_requests=requests,
                              record_charges=record_charges)
    result = driver.run()
    return result, driver.engine


class TestSeededReplay:
    def test_same_seed_replays_sample_for_sample(self):
        first, first_engine = _drive(seed=11)
        second, second_engine = _drive(seed=11)
        assert first.latencies.samples_ms == second.latencies.samples_ms
        assert first_engine.events_processed == second_engine.events_processed
        assert first_engine.now_ms == second_engine.now_ms

    def test_different_seed_actually_differs(self):
        # Guard against the replay test passing vacuously (e.g. everything
        # collapsing to constant latencies).
        first, _ = _drive(seed=11)
        second, _ = _drive(seed=12)
        assert first.latencies.samples_ms  # non-empty
        assert first.latencies.samples_ms != second.latencies.samples_ms


class TestFigure5Parity:
    def test_engine_single_client_matches_sequential(self):
        # One engine client and no concurrency: the engine-driven Figure 5
        # must reproduce the sequential cross-check sample for sample, for
        # every system in the comparison.
        sequential = run_figure5(requests_per_size=6, sizes=("8MB",), seed=3,
                                 driver="sequential")
        engine = run_figure5(requests_per_size=6, sizes=("8MB",), seed=3,
                             driver="engine", clients=1)
        seq_point = sequential.points["8MB"]
        eng_point = engine.points["8MB"]
        assert set(seq_point.recorders) == set(eng_point.recorders)
        for system, recorder in seq_point.recorders.items():
            assert eng_point.recorders[system].samples_ms == \
                pytest.approx(recorder.samples_ms), system


class TestChargeLogOptOutParity:
    def test_unlogged_run_is_sample_identical(self):
        logged, logged_engine = _drive(seed=11, record_charges=True)
        unlogged, unlogged_engine = _drive(seed=11, record_charges=False)
        assert unlogged.latencies.samples_ms == \
            pytest.approx(logged.latencies.samples_ms)
        assert unlogged_engine.events_processed == logged_engine.events_processed
        assert unlogged_engine.now_ms == logged_engine.now_ms
