"""Integration tests for the engine-driven multi-client load driver.

These pin down the acceptance properties of the event-engine refactor, now
expressed through the futures-first client API (the driver constructs one
CloudburstClient per simulated client; request fns never touch a Scheduler):

* a single engine-driven client reproduces the sequential path's
  ``RequestContext`` accounting exactly;
* concurrency creates real queueing (latency up, throughput capacity-bound)
  through the actual scheduler -> executor -> cache -> Anna stack;
* seeded runs are deterministic across invocations;
* the autoscaling path adds and drains real VMs.
"""

import pytest

from repro.bench.harness import (
    EngineLoadDriver,
    build_cluster_with_threads,
    run_closed_loop,
    run_engine_closed_loop,
    run_engine_open_loop,
)
from repro.cloudburst import CloudburstCluster
from repro.cloudburst.monitoring import AutoscalingPolicy, MonitoringConfig


def _make_cluster(seed=11, executor_vms=2, threads_per_vm=3):
    cluster = CloudburstCluster(executor_vms=executor_vms,
                                threads_per_vm=threads_per_vm, seed=seed)
    cloud = cluster.connect("setup")

    def work(cloudburst, x):
        cloudburst.simulate_compute(20.0)
        return x * 2

    cloud.register(work, name="work")
    return cluster, cloud


def _work_request(cloud, ctx, index):
    return cloud.call("work", [index], ctx=ctx)


class TestSingleClientEquivalence:
    def test_matches_sequential_accounting(self):
        # Two identically seeded clusters: one driven sequentially, one by a
        # single engine client.  With one client there is never queueing, so
        # the latency sequences must agree sample for sample.
        _cluster_a, cloud_a = _make_cluster(seed=21)
        sequential = run_closed_loop(
            "sequential", lambda i: cloud_a.call("work", [i]).latency_ms, 40)

        cluster_b, _cloud_b = _make_cluster(seed=21)
        engine_run = run_engine_closed_loop(
            cluster_b, _work_request, clients=1, total_requests=40)

        assert engine_run.latencies.samples_ms == \
            pytest.approx(sequential.samples_ms)

    def test_detaches_engine_after_run(self):
        cluster, cloud = _make_cluster(seed=5)
        run_engine_closed_loop(
            cluster, lambda c, ctx, index: c.call("work", [1], ctx=ctx),
            clients=2, total_requests=10)
        assert cluster.engine is None
        assert all(vm.engine is None for vm in cluster.vms)
        # Sequential use afterwards sees no stale queue state.
        result = cloud.call("work", [3]).result()
        assert result.value == 6
        assert result.ctx.total("cloudburst", "executor_queue") == 0.0

    def test_detach_clears_queue_state_for_scheduling_policy(self):
        # Regression: driver reservations left in the work queues would make
        # every thread read as busy/full at the zero-based clocks sequential
        # requests use, silently disabling locality scheduling afterwards.
        cluster, cloud = _make_cluster(seed=31)
        run_engine_closed_loop(
            cluster, _work_request, clients=6, total_requests=60)
        for vm in cluster.vms:
            for thread in vm.threads:
                assert not thread.work_queue.busy_at(0.0)
                assert thread.work_queue.depth(0.0) == 0
        # Locality scheduling still functions on the same cluster.
        cloud.put("hot", [1, 2, 3])
        cloud.register(lambda data: sum(data), name="summer")
        from repro.cloudburst import CloudburstReference

        reference = CloudburstReference("hot")
        cloud.call("summer", [reference])
        for _ in range(4):
            cloud.call("summer", [reference])
        assert sum(s.stats.locality_hits for s in cluster.schedulers) >= 1


class TestContention:
    def test_oversubscription_queues_and_caps_throughput(self):
        cluster, _ = _make_cluster(seed=7, executor_vms=1, threads_per_vm=2)
        light = run_engine_closed_loop(cluster, _work_request, clients=1,
                                       total_requests=60)
        cluster2, _ = _make_cluster(seed=7, executor_vms=1, threads_per_vm=2)
        heavy = run_engine_closed_loop(cluster2, _work_request, clients=8,
                                       total_requests=60)
        # 8 clients over 2 threads: latency inflates with queueing delay...
        assert heavy.latencies.summary().median_ms > \
            2 * light.latencies.summary().median_ms
        # ...and throughput is capacity-bound near 2 threads' worth.
        per_thread = 1000.0 / light.latencies.summary().median_ms
        assert heavy.overall_throughput_per_s < 2.6 * per_thread
        assert heavy.overall_throughput_per_s > 1.4 * per_thread

    def test_queue_wait_is_charged_to_the_request(self):
        cluster, _ = _make_cluster(seed=9, executor_vms=1, threads_per_vm=1)
        waits = []

        def request(cloud, ctx, index):
            future = cloud.call("work", [index], ctx=ctx)
            waits.append(future.ctx.total("cloudburst", "executor_queue"))
            return future

        run_engine_closed_loop(cluster, request, clients=4, total_requests=20)
        assert any(wait > 0 for wait in waits)


class TestDeterminism:
    def _drive(self, seed):
        cluster, _ = _make_cluster(seed=seed, executor_vms=2)
        return run_engine_closed_loop(cluster, _work_request, clients=6,
                                      total_requests=80)

    def test_same_seed_identical_latency_sequence(self):
        first = self._drive(13)
        second = self._drive(13)
        assert first.latencies.samples_ms == second.latencies.samples_ms
        assert first.duration_ms == second.duration_ms

    def test_different_seed_differs(self):
        assert self._drive(13).latencies.samples_ms != \
            self._drive(14).latencies.samples_ms


class TestOpenLoop:
    def test_poisson_arrivals_complete(self):
        cluster, _ = _make_cluster(seed=17)
        sim = run_engine_open_loop(cluster, _work_request,
                                   arrival_rate_per_s=100.0,
                                   duration_ms=2_000.0)
        # ~200 arrivals expected over 2 s at 100/s.
        assert 120 < sim.completed_requests < 300
        assert sim.latencies.summary().median_ms > 0


class TestDriverAutoscaling:
    def test_policy_adds_real_vms_and_drains(self):
        cluster, _ = _make_cluster(seed=23, executor_vms=2)
        config = MonitoringConfig(vms_per_scale_up=1,
                                  node_startup_delay_ms=2_000.0,
                                  max_vms=8)
        driver = EngineLoadDriver(
            cluster, _work_request, clients=20,
            stop_ms=10_000.0, max_duration_ms=15_000.0,
            policy=AutoscalingPolicy(config), policy_interval_ms=1_000.0,
            min_threads=config.min_pinned_threads)
        sim = driver.run()
        capacities = [capacity for _, capacity in sim.capacity_timeline]
        assert capacities[0] == 6
        assert max(capacities) > 6          # scale-up really added VMs
        assert len(cluster.vms) > 2
        assert capacities[-1] == config.min_pinned_threads  # drained

    def test_invalid_configuration_rejected(self):
        cluster, _ = _make_cluster(seed=3)
        with pytest.raises(ValueError):
            EngineLoadDriver(cluster, lambda c, ctx, i: None, clients=0)
        with pytest.raises(ValueError):
            EngineLoadDriver(cluster, lambda c, ctx, i: None, mode="open",
                             arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            EngineLoadDriver(cluster, lambda c, ctx, i: None, clients=1)
        with pytest.raises(ValueError):
            EngineLoadDriver(cluster, lambda c, ctx, i: None, clients=1,
                             max_requests=10,
                             policy=lambda now, metrics: None)


class TestBuildClusterWithThreads:
    def test_exact_totals(self):
        for total in (1, 2, 3, 4, 10):
            cluster = build_cluster_with_threads(total, threads_per_vm=3, seed=1)
            assert cluster.total_threads() == total

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            build_cluster_with_threads(0)
