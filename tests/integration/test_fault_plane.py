"""Integration tests for fault injection and §4.5 recovery.

Each fault class runs the retwis DAG workload with real failures landing
mid-flight and must come out whole: every injected fault recovered within
the bounded window, zero abandoned sessions, zero calls routed to dead
threads, the Table 2 invariants intact — and the whole fault timeline plus
the anomaly counters replayed sample-for-sample for the same seed.
"""

import pytest

from repro.bench.faultbench import (
    FAULT_CLASSES,
    _build_cluster,
    _run_fault_class,
    fault_recovery_errors,
    run_fault_recovery,
)
from repro.sim import FaultPlane, RandomSource


def _run(fault, seed=11, request_count=80):
    return _run_fault_class(
        fault, seed, request_count=request_count, clients=8, executor_vms=4,
        scheduler_count=2, user_count=20, seed_tweet_count=100,
        mean_interval_ms=15.0, downtime_ms=8.0, tick_interval_ms=4.0,
        propagation_interval_ms=50.0, include_journals=True)


class TestEveryFaultClassRecovers:
    @pytest.mark.parametrize("fault", FAULT_CLASSES)
    def test_oracle_holds_under_fault(self, fault):
        result = _run(fault)
        faults = result["faults"]
        assert faults["injected"] > 0, "the run never exercised the class"
        assert faults["recovered"] == faults["injected"]
        assert faults["max_recovery_ms"] <= faults["recovery_bound_ms"]
        assert result["abandoned_sessions"] == 0
        assert result["calls_routed_to_dead"] == 0
        assert result["violations"] == []
        assert result["completed"] > 0
        # Every journaled session reached a terminal state.
        for journal in result["journals"]:
            assert journal["counts"]["running"] == 0

    def test_scheduler_crash_recovers_in_flight_sessions(self):
        result = _run("scheduler_crash")
        assert result["recovered_sessions"] > 0
        recovered = [session for journal in result["journals"]
                     for session in journal["sessions"]
                     if session["recoveries"] > 0]
        assert recovered
        for session in recovered:
            # The abandoned attempt stays in the history; the session itself
            # completed after recovery.
            assert session["status"] == "completed"
            assert any(attempt["status"] == "abandoned"
                       for attempt in session["attempts"])


class TestSeedDeterminism:
    def test_same_seed_identical_timeline_and_anomalies(self):
        first = _run("executor_kill", seed=21)
        second = _run("executor_kill", seed=21)
        assert first["timeline_signature"] == second["timeline_signature"]
        assert first["timeline_signature"], "no fault fired — vacuous test"
        assert first["anomalies"] == second["anomalies"]
        assert first["duration_ms"] == second["duration_ms"]

    def test_different_seed_differs(self):
        first = _run("executor_kill", seed=21)
        second = _run("executor_kill", seed=22)
        assert first["timeline_signature"] != second["timeline_signature"]


class TestClusterWholeAfterRun:
    def test_faults_fully_unwound(self):
        # Run with every class enabled at an aggressive schedule, then check
        # the cluster handed back is whole: no dead VMs, no down schedulers,
        # no partitioned or missing storage replicas, no leaked snapshots.
        from repro.bench.harness import EngineLoadDriver

        cluster, _tracker, app, generator, _tweets = _build_cluster(
            seed=5, executor_vms=4, scheduler_count=2, user_count=20,
            seed_tweet_count=80, propagation_interval_ms=50.0)
        # With all four classes armed the per-class interval must leave the
        # cluster healthy most of the time, or recovery (which rightly does
        # not burn the retry budget) livelocks the workload.
        plane = FaultPlane(cluster, RandomSource(5).spawn("fault-plane"),
                           mean_interval_ms=40.0, downtime_ms=6.0,
                           tick_interval_ms=3.0)
        stream = generator.request_stream(60)

        def request(cloud, ctx, index):
            req = stream[index % len(stream)]
            return cloud.call_dag(
                "retwis-timeline",
                {"fb_read_profile": [req.user], "fb_timeline": [req.user]},
                ctx=ctx)

        driver = EngineLoadDriver(cluster, request, clients=6, max_requests=60)
        plane.attach(driver.engine)
        try:
            driver.run()
        finally:
            plane.detach()
        assert plane.injected_count() > 0
        assert plane.recovered_count() == plane.injected_count()
        assert all(vm.alive for vm in cluster.vms)
        assert all(s.alive for s in cluster.schedulers)
        assert cluster.kvs.partitioned_nodes() == []
        assert cluster.kvs.node_count() == 4
        assert cluster.abandoned_session_count() == 0
        for vm in cluster.vms:
            assert vm.cache.snapshot_count() == 0

    def test_gate_over_reduced_section(self):
        section = run_fault_recovery(
            seed=3, request_count=80, clients=8,
            fault_classes=("executor_kill", "scheduler_crash"),
            mean_interval_ms=15.0, downtime_ms=8.0, tick_interval_ms=4.0,
            determinism_check=True)
        assert fault_recovery_errors(section) == []
        # A section that does not declare its class list is held to the full
        # default matrix — missing classes are gate errors, not silent passes.
        undeclared = {key: value for key, value in section.items()
                      if key != "fault_classes"}
        errors = fault_recovery_errors(undeclared)
        assert "fault_recovery[storage_drop]: class was not run" in errors
        assert "fault_recovery[gossip_partition]: class was not run" in errors
