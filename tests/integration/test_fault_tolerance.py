"""Integration tests for fault tolerance (§4.5) and elasticity of the compute tier."""

import pytest

from repro import CloudburstCluster


@pytest.fixture
def cluster():
    return CloudburstCluster(executor_vms=3, threads_per_vm=2, seed=11)


@pytest.fixture
def cloud(cluster):
    return cluster.connect()


class TestExecutorFailure:
    def test_scheduler_avoids_failed_vm_without_retries(self, cluster, cloud):
        """A VM that died *before* the request is simply never selected."""
        cloud.register(lambda x: x * 2, name="double")
        cloud.register_dag("doubling", ["double"])
        scheduler = cluster.schedulers[0]
        pinned_thread_id = scheduler.function_pins["double"][0]
        victim_vm = next(vm for vm in cluster.vms
                         if pinned_thread_id in vm.thread_ids())
        cluster.fail_vm(victim_vm.vm_id)
        result = cloud.call_dag("doubling", {"double": [21]})
        assert result.value == 42
        assert result.retries == 0

    def test_dag_reexecutes_after_mid_flight_failure(self, cluster, cloud):
        """A machine failing *while* executing a function triggers the §4.5
        behaviour: the whole DAG re-executes after a configurable timeout."""
        state = {"failures_left": 1}

        def flaky(cloudburst, x):
            if state["failures_left"] > 0:
                state["failures_left"] -= 1
                # Simulate the executor's VM dying mid-invocation.
                cluster.fail_vm(cloudburst.get_id().split(":")[0])
                from repro.errors import ExecutorFailedError

                raise ExecutorFailedError(cloudburst.get_id(), "chaos")
            return x * 2

        cloud.register(flaky, name="flaky")
        cloud.register_dag("flaky-dag", ["flaky"])
        result = cloud.call_dag("flaky-dag", {"flaky": [21]})
        assert result.value == 42
        assert result.retries == 1
        # Re-execution waits out the configurable timeout before retrying.
        assert result.ctx.total("cloudburst", "fault_timeout") > 0

    def test_single_function_call_retries_on_failure(self, cluster, cloud):
        cloud.register(lambda: "alive", name="probe")
        cluster.fail_vm(cluster.vms[0].vm_id)
        assert cloud.call("probe").value == "alive"

    def test_unrecoverable_when_every_executor_is_down(self, cluster, cloud):
        cloud.register(lambda: 1, name="f")
        cloud.register_dag("d", ["f"])
        for vm in cluster.vms:
            cluster.fail_vm(vm.vm_id)
        with pytest.raises(Exception):
            cloud.call_dag("d")

    def test_recovered_vm_rejoins_with_cold_cache(self, cluster, cloud):
        cloud.put("warm-key", "value")
        cloud.register(lambda x: x, name="echo")
        victim = cluster.vms[0]
        victim.cache.get_or_fetch("warm-key")
        cluster.fail_vm(victim.vm_id)
        cluster.recover_vm(victim.vm_id)
        assert victim.alive
        assert not victim.cache.contains("warm-key")
        assert cloud.call("echo", [1]).value == 1

    def test_storage_survives_compute_failures(self, cluster, cloud):
        cloud.put("durable", {"important": True})
        for vm in cluster.vms:
            cluster.fail_vm(vm.vm_id)
        assert cloud.get("durable") == {"important": True}


class TestMessagingFaultPaths:
    def test_messages_to_failed_executor_go_to_inbox_and_survive(self, cluster, cloud):
        threads = [t for vm in cluster.vms for t in vm.threads]
        sender, receiver = threads[0], threads[-1]
        receiver_vm = receiver.vm
        cluster.fail_vm(receiver_vm.vm_id)
        assert not cluster.router.send(sender.thread_id, receiver.thread_id, "urgent")
        cluster.recover_vm(receiver_vm.vm_id)
        assert cluster.router.recv(receiver.thread_id) == ["urgent"]


class TestComputeElasticity:
    def test_add_and_remove_vms_preserve_function_availability(self, cluster, cloud):
        cloud.register(lambda x: x + 1, name="inc")
        cloud.register_dag("inc-dag", ["inc"])
        cluster.add_vm()
        cluster.add_vm()
        assert cloud.call_dag("inc-dag", {"inc": [1]}).value == 2
        cluster.remove_vm()
        assert cloud.call_dag("inc-dag", {"inc": [2]}).value == 3

    def test_new_vm_reads_functions_from_kvs(self, cluster, cloud):
        cloud.register(lambda x: x * 3, name="triple")
        new_vm = cluster.add_vm()
        # The new node was never told about "triple" explicitly; it must be
        # able to fetch it from Anna on demand (§4.4: Anna is the source of truth).
        from repro.cloudburst.consistency.protocols import SessionState, make_protocol
        from repro.cloudburst import ConsistencyLevel

        state = SessionState.create(ConsistencyLevel.LWW)
        value = new_vm.threads[0].execute("triple", [7], None, state,
                                          make_protocol(ConsistencyLevel.LWW))
        assert value == 21

    def test_removing_vm_unregisters_cache_and_threads(self, cluster):
        removed = cluster.remove_vm()
        assert removed.cache.cache_id not in cluster.kvs.cache_index.tracked_caches()
        for thread in removed.threads:
            assert not cluster.router.is_registered(thread.thread_id)

    def test_monitoring_tick_scales_compute_tier(self, cluster, cloud):
        before = len(cluster.vms)
        for vm in cluster.vms:
            vm.inflight = len(vm.threads)
        cluster.publish_all_metrics()
        report = cluster.monitoring.tick()
        assert report.vms_added > 0
        assert len(cluster.vms) > before
