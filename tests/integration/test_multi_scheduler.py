"""Multi-scheduler round-robin coverage (satellite of the futures-first API).

A Cloudburst deployment runs several independent schedulers; clients
round-robin their requests across all of them (§4.3).  These tests pin the
property the public API promises: N clients over M schedulers agree on the
registered functions and DAGs, and an invocation produces the identical
result no matter which scheduler happens to serve it — sequentially and on
the engine backend.
"""

import pytest

from repro.bench.harness import run_engine_closed_loop
from repro.cloudburst import CloudburstCluster
from repro.errors import DagDeletedError

SCHEDULERS = 3
CLIENTS = 6


@pytest.fixture
def cluster():
    return CloudburstCluster(executor_vms=3, threads_per_vm=2,
                             scheduler_count=SCHEDULERS, seed=7)


@pytest.fixture
def clients(cluster):
    return [cluster.connect(f"client-{i}") for i in range(CLIENTS)]


def _register_pipeline(owner):
    owner.register(lambda x: x + 1, name="inc")
    owner.register(lambda x: x * 3, name="triple")
    owner.register_dag("pipe", ["inc", "triple"], [("inc", "triple")])


class TestSchedulerAgreement:
    def test_functions_and_dags_visible_on_every_scheduler(self, cluster, clients):
        _register_pipeline(clients[0])
        for scheduler in cluster.schedulers:
            assert "inc" in scheduler.functions
            assert "triple" in scheduler.functions
            assert "pipe" in scheduler.dag_registry

    def test_identical_results_regardless_of_serving_scheduler(self, cluster, clients):
        _register_pipeline(clients[0])
        # Each call round-robins to a different scheduler; 2 * M calls per
        # client guarantees every (client, scheduler) pairing is exercised.
        for cloud in clients:
            values = [cloud.call_dag("pipe", {"inc": [4]}).value
                      for _ in range(2 * SCHEDULERS)]
            assert values == [15] * (2 * SCHEDULERS)
        served = [s.stats.calls_per_dag.get("pipe", 0) for s in cluster.schedulers]
        assert all(count > 0 for count in served), served

    def test_single_function_calls_round_robin_and_agree(self, cluster, clients):
        _register_pipeline(clients[0])
        for cloud in clients:
            assert [cloud.call("inc", [1]).value
                    for _ in range(SCHEDULERS)] == [2] * SCHEDULERS
        served = [s.stats.calls_per_function.get("inc", 0)
                  for s in cluster.schedulers]
        assert all(count > 0 for count in served), served

    def test_reregistration_wins_on_every_scheduler(self, cluster, clients):
        clients[0].register(lambda x: "old", name="versioned")
        # A different client re-registers; every scheduler must serve the new
        # body afterwards, whatever the round-robin position.
        clients[1].register(lambda x: "new", name="versioned")
        for cloud in clients:
            assert [cloud.call("versioned", [0]).value
                    for _ in range(SCHEDULERS)] == ["new"] * SCHEDULERS

    def test_delete_dag_refused_by_every_scheduler(self, cluster, clients):
        _register_pipeline(clients[0])
        clients[1].delete_dag("pipe")
        for cloud in clients:
            for _ in range(SCHEDULERS):
                with pytest.raises(DagDeletedError):
                    cloud.call_dag("pipe", {"inc": [4]})


class TestEngineBackendOverManySchedulers:
    def test_engine_driver_spreads_clients_over_schedulers(self, cluster, clients):
        _register_pipeline(clients[0])

        values = []

        def request(cloud, ctx, index):
            future = cloud.call_dag("pipe", {"inc": [4]}, ctx=ctx)
            future.add_done_callback(lambda f: values.append(f.get()))
            return future

        sim = run_engine_closed_loop(cluster, request, clients=CLIENTS,
                                     total_requests=36)
        assert sim.completed_requests == 36
        assert values == [15] * 36
        served = [s.stats.calls_per_dag.get("pipe", 0)
                  for s in cluster.schedulers]
        assert all(count > 0 for count in served), served


class TestSchedulerFailover:
    """Scheduler crash mid-run (satellite of the fault-plane PR).

    scheduler-0 crashes while its DAG sessions are in flight and restarts
    later; the restarted scheduler replays its journal and resumes every
    abandoned session, clients fail over to the survivors in between, and
    no request is lost, double-applied, or routed to a dead thread.
    """

    def test_crash_and_restart_loses_no_requests(self, cluster, clients):
        from repro.bench.harness import EngineLoadDriver

        _register_pipeline(clients[0])
        values = []

        def request(cloud, ctx, index):
            future = cloud.call_dag("pipe", {"inc": [4]}, ctx=ctx)
            future.add_done_callback(lambda f: values.append(f.get()))
            return future

        driver = EngineLoadDriver(cluster, request, clients=CLIENTS,
                                  max_requests=48)
        # Crash scheduler-0 once requests are in flight; restart it while the
        # run is still going so it serves again before the budget is done.
        driver.engine.at(2.0, lambda: cluster.crash_scheduler("scheduler-0"))
        driver.engine.at(10.0, lambda: cluster.restart_scheduler("scheduler-0"))
        sim = driver.run()

        assert sim.completed_requests == 48
        assert values == [15] * 48
        crashed = cluster.scheduler("scheduler-0")
        assert crashed.alive
        # The restart resumed (not dropped) whatever the crash abandoned.
        assert crashed.journal.recovered_sessions > 0
        assert crashed.stats.calls_routed_to_dead == 0
        for scheduler in cluster.schedulers:
            assert scheduler.journal.in_flight_count() == 0
            assert "pipe" in scheduler.dag_registry  # registrations agree
        assert cluster.abandoned_session_count() == 0

    def test_untouched_sessions_apply_exactly_once(self, cluster, clients):
        from repro.bench.harness import EngineLoadDriver

        _register_pipeline(clients[0])

        def request(cloud, ctx, index):
            return cloud.call_dag("pipe", {"inc": [4]}, ctx=ctx)

        driver = EngineLoadDriver(cluster, request, clients=CLIENTS,
                                  max_requests=36)
        driver.engine.at(2.0, lambda: cluster.crash_scheduler("scheduler-0"))
        driver.engine.at(8.0, lambda: cluster.restart_scheduler("scheduler-0"))
        driver.run()
        for scheduler in cluster.schedulers:
            for record in scheduler.journal.records():
                if record.recoveries == 0:
                    # Sessions the crash never touched ran exactly one attempt.
                    assert len(record.attempts) == 1

    def test_all_schedulers_down_is_a_scheduling_error(self, cluster, clients):
        from repro.errors import SchedulingError

        _register_pipeline(clients[0])
        for scheduler in cluster.schedulers:
            cluster.crash_scheduler(scheduler.scheduler_id)
        with pytest.raises(SchedulingError):
            clients[0].call("inc", [1])
