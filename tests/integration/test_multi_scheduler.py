"""Multi-scheduler round-robin coverage (satellite of the futures-first API).

A Cloudburst deployment runs several independent schedulers; clients
round-robin their requests across all of them (§4.3).  These tests pin the
property the public API promises: N clients over M schedulers agree on the
registered functions and DAGs, and an invocation produces the identical
result no matter which scheduler happens to serve it — sequentially and on
the engine backend.
"""

import pytest

from repro.bench.harness import run_engine_closed_loop
from repro.cloudburst import CloudburstCluster
from repro.errors import DagDeletedError

SCHEDULERS = 3
CLIENTS = 6


@pytest.fixture
def cluster():
    return CloudburstCluster(executor_vms=3, threads_per_vm=2,
                             scheduler_count=SCHEDULERS, seed=7)


@pytest.fixture
def clients(cluster):
    return [cluster.connect(f"client-{i}") for i in range(CLIENTS)]


def _register_pipeline(owner):
    owner.register(lambda x: x + 1, name="inc")
    owner.register(lambda x: x * 3, name="triple")
    owner.register_dag("pipe", ["inc", "triple"], [("inc", "triple")])


class TestSchedulerAgreement:
    def test_functions_and_dags_visible_on_every_scheduler(self, cluster, clients):
        _register_pipeline(clients[0])
        for scheduler in cluster.schedulers:
            assert "inc" in scheduler.functions
            assert "triple" in scheduler.functions
            assert "pipe" in scheduler.dag_registry

    def test_identical_results_regardless_of_serving_scheduler(self, cluster, clients):
        _register_pipeline(clients[0])
        # Each call round-robins to a different scheduler; 2 * M calls per
        # client guarantees every (client, scheduler) pairing is exercised.
        for cloud in clients:
            values = [cloud.call_dag("pipe", {"inc": [4]}).value
                      for _ in range(2 * SCHEDULERS)]
            assert values == [15] * (2 * SCHEDULERS)
        served = [s.stats.calls_per_dag.get("pipe", 0) for s in cluster.schedulers]
        assert all(count > 0 for count in served), served

    def test_single_function_calls_round_robin_and_agree(self, cluster, clients):
        _register_pipeline(clients[0])
        for cloud in clients:
            assert [cloud.call("inc", [1]).value
                    for _ in range(SCHEDULERS)] == [2] * SCHEDULERS
        served = [s.stats.calls_per_function.get("inc", 0)
                  for s in cluster.schedulers]
        assert all(count > 0 for count in served), served

    def test_reregistration_wins_on_every_scheduler(self, cluster, clients):
        clients[0].register(lambda x: "old", name="versioned")
        # A different client re-registers; every scheduler must serve the new
        # body afterwards, whatever the round-robin position.
        clients[1].register(lambda x: "new", name="versioned")
        for cloud in clients:
            assert [cloud.call("versioned", [0]).value
                    for _ in range(SCHEDULERS)] == ["new"] * SCHEDULERS

    def test_delete_dag_refused_by_every_scheduler(self, cluster, clients):
        _register_pipeline(clients[0])
        clients[1].delete_dag("pipe")
        for cloud in clients:
            for _ in range(SCHEDULERS):
                with pytest.raises(DagDeletedError):
                    cloud.call_dag("pipe", {"inc": [4]})


class TestEngineBackendOverManySchedulers:
    def test_engine_driver_spreads_clients_over_schedulers(self, cluster, clients):
        _register_pipeline(clients[0])

        values = []

        def request(cloud, ctx, index):
            future = cloud.call_dag("pipe", {"inc": [4]}, ctx=ctx)
            future.add_done_callback(lambda f: values.append(f.get()))
            return future

        sim = run_engine_closed_loop(cluster, request, clients=CLIENTS,
                                     total_requests=36)
        assert sim.completed_requests == 36
        assert values == [15] * 36
        served = [s.stats.calls_per_dag.get("pipe", 0)
                  for s in cluster.schedulers]
        assert all(count > 0 for count in served), served
