"""Integration tests for the observability plane.

The acceptance properties: one client call under the engine backend yields a
*connected* causal span tree covering scheduler placement, executor queueing,
cache traffic and Anna storage; span context survives ``fork()``, §4.5
retries, executor kills and scheduler crash/recovery without orphaning a
single span; and tracing never touches a clock — seeded latency timelines
are byte-identical with tracing fully on, fully off, or attached at rate 0.
"""

import pytest

from repro.bench.harness import EngineLoadDriver, run_engine_closed_loop
from repro.cloudburst import CloudburstCluster, CloudburstReference
from repro.cloudburst.monitoring import (
    SCHEDULER_METRICS_PREFIX,
    MonitoringSystem,
)
from repro.obs import Tracer
from repro.sim import Engine, FaultPlane, RandomSource


def _pipeline_cluster(tracer=None, seed=3, executor_vms=2,
                      scheduler_count=1, **cluster_kwargs):
    cluster = CloudburstCluster(executor_vms=executor_vms, threads_per_vm=3,
                                scheduler_count=scheduler_count,
                                tracer=tracer, seed=seed, **cluster_kwargs)
    cloud = cluster.connect()
    cloud.put("k1", 5)

    def inc(cloudburst, ref):
        cloudburst.simulate_compute(5.0)
        return ref + 1

    def double(cloudburst, value):
        cloudburst.simulate_compute(5.0)
        return value * 2

    cloud.register(inc, name="inc")
    cloud.register(double, name="double")
    cloud.register_dag("pipeline", ["inc", "double"], [("inc", "double")])
    return cluster, cloud


class TestConnectedSpanTree:
    def test_single_call_dag_covers_every_tier(self):
        tracer = Tracer(sample_rate=1.0)
        # Prefetch off so the reference read is a foreground cache miss and
        # the request tree reaches the anna tier (prefetch would serve it
        # from a background fetch — covered in test_prefetch.py).
        cluster, cloud = _pipeline_cluster(tracer=tracer,
                                           prefetch_references=False)
        engine = Engine()
        cluster.attach_engine(engine)
        try:
            future = cloud.call_dag("pipeline",
                                    {"inc": [CloudburstReference("k1")]})
            engine.run()
            assert future.result().value == 12
        finally:
            cluster.detach_engine()

        request_roots = [span for span in tracer.roots()
                         if not (span.attrs or {}).get("background")]
        assert len(request_roots) == 1
        trace_id = request_roots[0].trace_id
        # One connected tree: every tier, no orphans, everything closed.
        assert set(tracer.tiers(trace_id)) == \
            {"client", "scheduler", "executor", "cache", "anna"}
        assert tracer.orphan_spans() == []
        assert tracer.unfinished_spans() == []
        names = {span.name for span in tracer.spans_for(trace_id)}
        assert {"schedule", "invoke:inc", "invoke:double"} <= names

    def test_forked_branches_share_the_trace(self):
        # A diamond DAG forks the context; both branches' spans must land in
        # the same trace, parented under the same attempt.
        tracer = Tracer(sample_rate=1.0)
        cluster = CloudburstCluster(executor_vms=2, threads_per_vm=3,
                                    tracer=tracer, seed=7)
        cloud = cluster.connect()

        def source(cloudburst):
            return 1

        def left(cloudburst, value):
            cloudburst.simulate_compute(4.0)
            return value + 10

        def right(cloudburst, value):
            cloudburst.simulate_compute(6.0)
            return value + 20

        def join(cloudburst, a, b):
            return a + b

        for func, name in ((source, "source"), (left, "left"),
                           (right, "right"), (join, "join")):
            cloud.register(func, name=name)
        cloud.register_dag("diamond", ["source", "left", "right", "join"],
                           [("source", "left"), ("source", "right"),
                            ("left", "join"), ("right", "join")])
        engine = Engine()
        cluster.attach_engine(engine)
        try:
            future = cloud.call_dag("diamond", {"source": []})
            engine.run()
            assert future.result().value == 32
        finally:
            cluster.detach_engine()

        trace_ids = {span.trace_id for span in tracer.spans
                     if not (span.attrs or {}).get("background")}
        assert len(trace_ids) == 1
        members = tracer.spans_for(trace_ids.pop())
        function_spans = [s for s in members if s.name.startswith("function:")]
        assert {s.name for s in function_spans} == \
            {"function:source", "function:left", "function:right",
             "function:join"}
        # Both forked branches hang off the same attempt span.
        attempt = next(s for s in members if s.name.startswith("attempt:"))
        assert {s.parent_id for s in function_spans} == {attempt.span_id}
        assert tracer.orphan_spans() == []

    def test_rate_zero_records_nothing_end_to_end(self):
        tracer = Tracer(sample_rate=0.0)
        cluster, cloud = _pipeline_cluster(tracer=tracer)
        engine = Engine()
        cluster.attach_engine(engine)
        try:
            future = cloud.call_dag("pipeline",
                                    {"inc": [CloudburstReference("k1")]})
            engine.run()
            assert future.result().value == 12
        finally:
            cluster.detach_engine()
        assert len(tracer) == 0


def _run_under_faults(fault_class, tracer, seed, requests=60, clients=6):
    # A compact fault timeout (as in the fault-plane suite): the default 5 s
    # dwarfs this workload's ~15 ms DAGs, so timed-out attempts would sit
    # out fault after fault instead of retrying inside the run window.
    cluster, cloud = _pipeline_cluster(
        tracer=tracer, seed=seed, executor_vms=4, scheduler_count=2,
        fault_timeout_ms=50.0)
    plane = FaultPlane(cluster, RandomSource(seed).spawn("fault-plane"),
                       classes=(fault_class,), mean_interval_ms=15.0,
                       downtime_ms=8.0, tick_interval_ms=4.0)

    def request(cloud_client, ctx, index):
        return cloud_client.call_dag(
            "pipeline", {"inc": [CloudburstReference("k1")]}, ctx=ctx)

    driver = EngineLoadDriver(cluster, request, clients=clients,
                              max_requests=requests)
    plane.attach(driver.engine)
    try:
        driver.run()
    finally:
        plane.detach()
    assert plane.injected_count() > 0, "fault class never fired — vacuous"
    return cluster


def _links(tracer, relation):
    return [span for span in tracer.spans
            if span.links and any(rel == relation for rel, _ in span.links)]


class TestSpansSurviveFaults:
    def test_executor_kill_retries_link_not_orphan(self):
        tracer = Tracer(sample_rate=1.0)
        _run_under_faults("executor_kill", tracer, seed=21)
        retried = _links(tracer, "retry_of")
        assert retried, "no retry attempt was ever traced"
        by_id = {span.span_id: span for span in tracer.spans}
        for attempt in retried:
            relation, superseded_id = attempt.links[0]
            superseded = by_id[superseded_id]
            # The superseded attempt belongs to the same trace and is closed;
            # the retry is a sibling (linked), never a child of the failure.
            assert superseded.trace_id == attempt.trace_id
            assert superseded.finished
            assert attempt.parent_id != superseded.span_id
        assert tracer.orphan_spans() == []

    def test_scheduler_crash_recovery_links_abandoned_attempt(self):
        tracer = Tracer(sample_rate=1.0)
        cluster = _run_under_faults("scheduler_crash", tracer, seed=23,
                                    requests=80, clients=8)
        recovered = _links(tracer, "recovered_from")
        assert recovered, "no crash landed on an in-flight traced session"
        by_id = {span.span_id: span for span in tracer.spans}
        for attempt in recovered:
            _, abandoned_id = next(link for link in attempt.links
                                   if link[0] == "recovered_from")
            assert by_id[abandoned_id].trace_id == attempt.trace_id
        assert tracer.orphan_spans() == []
        assert cluster.abandoned_session_count() == 0


class TestTracingNeverChargesClocks:
    def _drive(self, tracer, seed=13):
        cluster, _cloud = _pipeline_cluster(tracer=tracer, seed=seed)

        def request(cloud, ctx, index):
            return cloud.call_dag(
                "pipeline", {"inc": [CloudburstReference("k1")]}, ctx=ctx)

        return run_engine_closed_loop(cluster, request, clients=4,
                                      total_requests=40)

    def test_latency_samples_byte_identical_on_off_and_rate_zero(self):
        baseline = self._drive(tracer=None)
        fully_on = self._drive(tracer=Tracer(sample_rate=1.0))
        rate_zero = self._drive(tracer=Tracer(sample_rate=0.0))
        assert fully_on.latencies.samples_ms == baseline.latencies.samples_ms
        assert rate_zero.latencies.samples_ms == baseline.latencies.samples_ms
        assert fully_on.duration_ms == baseline.duration_ms


class TestTailLatencyPublication:
    def test_scheduler_histogram_reaches_monitoring_via_anna(self):
        cluster, cloud = _pipeline_cluster(seed=5)
        for index in range(20):
            assert cloud.call("inc", [index]).result().value == index + 1
        # The publisher writes each scheduler's histogram summary to its
        # metrics key; reads must not skew storage access statistics.
        from repro.cloudburst.controlplane import MetricsPublisher

        def total_accesses():
            return sum(stats.accesses
                       for node in cluster.kvs._nodes.values()
                       for stats in node._stats.values())

        before = total_accesses()
        MetricsPublisher(cluster).publish()
        scheduler = cluster.schedulers[0]
        published = cluster.kvs.peek(
            SCHEDULER_METRICS_PREFIX + scheduler.scheduler_id).reveal()
        assert published["latency"]["count"] == 20
        assert published["latency"]["p99_ms"] >= published["latency"]["p50_ms"]
        assert total_accesses() == before

        aggregated = MonitoringSystem(cluster).collect_tail_latency()
        assert aggregated["count"] == 20
        assert aggregated["p99_ms"] == \
            pytest.approx(published["latency"]["p99_ms"])

    def test_collect_tail_latency_falls_back_to_live_histograms(self):
        cluster, cloud = _pipeline_cluster(seed=6)
        cloud.call("inc", [1]).result()
        # Nothing published yet: the aggregate still sees the live histogram.
        aggregated = MonitoringSystem(cluster).collect_tail_latency()
        assert aggregated["count"] == 1


class TestTracingOverheadScenario:
    def test_disabled_tracing_measured_and_span_free(self):
        from repro.bench.enginebench import bench_tracing_overhead

        result = bench_tracing_overhead(requests=400, sites_per_request=6,
                                        repeats=1)
        assert result["spans_created"] == 0.0
        assert result["events"] == 400.0
        assert result["bare_seconds"] > 0.0
        assert result["guarded_seconds"] > 0.0
