"""Integration tests for the engine-driven storage tier (Figures 5, 6, 7).

The acceptance bar for putting Anna on the discrete-event engine: the
Figure 5/6 harnesses run through engine-attached storage nodes by default,
and a 1-client engine run reproduces the ``driver="sequential"`` synchronous
path sample-for-sample (same pin the consistency experiments carry in
``test_concurrent_sessions.py``).
"""

import pytest

from repro.bench import run_figure5, run_figure6, run_figure7
from repro.cloudburst.monitoring import MonitoringConfig


class TestFigure5EngineDriver:
    def test_one_client_engine_matches_sequential_sample_for_sample(self):
        kwargs = dict(requests_per_size=6, sizes=("800KB",), seed=2)
        sequential = run_figure5(driver="sequential", **kwargs)
        engine = run_figure5(driver="engine", clients=1, **kwargs)
        for label in ("Cloudburst (Hot)", "Cloudburst (Cold)"):
            assert engine.points["800KB"].recorders[label].samples_ms == \
                pytest.approx(sequential.points["800KB"].recorders[label].samples_ms)

    def test_engine_driver_is_deterministic(self):
        kwargs = dict(requests_per_size=6, sizes=("800KB",), seed=3, clients=3)
        first = run_figure5(**kwargs)
        second = run_figure5(**kwargs)
        for label in ("Cloudburst (Hot)", "Cloudburst (Cold)"):
            assert first.points["800KB"].recorders[label].samples_ms == \
                second.points["800KB"].recorders[label].samples_ms

    def test_concurrent_clients_still_satisfy_paper_ordering(self):
        sweep = run_figure5(requests_per_size=8, sizes=("8MB",), seed=1, clients=4)
        at_8mb = sweep.points["8MB"]
        assert at_8mb.median("Cloudburst (Hot)") < at_8mb.median("Cloudburst (Cold)")
        assert at_8mb.median("Cloudburst (Cold)") < at_8mb.median("Lambda (Redis)")

    def test_rejects_clients_knob_on_sequential_driver(self):
        with pytest.raises(ValueError):
            run_figure5(requests_per_size=2, sizes=("80KB",), driver="sequential",
                        clients=4)
        with pytest.raises(ValueError):
            run_figure5(requests_per_size=2, sizes=("80KB",), driver="bogus")


class TestFigure6EngineDriver:
    def test_one_client_engine_matches_sequential_sample_for_sample(self):
        sequential = run_figure6(repetitions=6, seed=2, driver="sequential")
        engine = run_figure6(repetitions=6, seed=2, driver="engine", clients=1)
        for label in ("Cloudburst (gossip)", "Cloudburst (gather)"):
            assert engine.recorders[label].samples_ms == \
                pytest.approx(sequential.recorders[label].samples_ms)

    def test_lambda_baselines_identical_across_drivers(self):
        # The simulated Lambda gathers never touch the engine; the driver
        # knob must not change their numbers at all.
        sequential = run_figure6(repetitions=5, seed=4, driver="sequential")
        engine = run_figure6(repetitions=5, seed=4, driver="engine", clients=2)
        for label in ("Lambda+Redis (gather)", "Lambda+Dynamo (gather)",
                      "Lambda+S3 (gather)"):
            assert engine.recorders[label].samples_ms == \
                sequential.recorders[label].samples_ms


class TestFigure7StorageTier:
    def test_storage_autoscaler_ticks_on_the_shared_timeline(self):
        experiment = run_figure7(
            initial_threads=6, client_count=12,
            load_duration_s=10.0, total_duration_s=15.0,
            policy_interval_ms=2_500.0,
            monitoring_config=MonitoringConfig(
                vms_per_scale_up=1, node_startup_delay_ms=5_000.0, max_vms=6),
            seed=1)
        scaler = experiment.storage_autoscaler
        assert scaler is not None
        # The policy really evaluated on virtual time while load was running.
        assert len(scaler.history) >= 2
        ticks = [at_ms for at_ms, _count in scaler.node_count_timeline]
        assert ticks == sorted(ticks)
        assert ticks[0] >= 2_500.0
        # The workload's Zipf head is hot enough to earn extra replicas.
        assert any(report.keys_boosted for report in scaler.history)
