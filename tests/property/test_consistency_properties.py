"""Property-based tests for the distributed-session consistency invariants.

These drive randomly generated read/write/stale-cache schedules through the
actual protocol implementations and check the §5.1 invariants:

* Repeatable read: within one session, every read of a key returns either the
  session's own most recent write or the first version the session read.
* Distributed session causal: a read of ``k`` is never causally older than any
  version of ``k`` in the session's dependency set.
"""

from hypothesis import given, settings, strategies as st

from repro.anna import AnnaCluster
from repro.cloudburst import ConsistencyLevel, ExecutorCache, LatticeEncapsulator
from repro.cloudburst.consistency.protocols import (
    DistributedSessionCausalProtocol,
    RepeatableReadProtocol,
    SessionState,
)
from repro.lattices import CausalLattice, LWWLattice, Timestamp, VectorClock
from repro.sim import LatencyModel

KEYS = ["k0", "k1", "k2"]

# A schedule step is one of:
#   ("external_write", key)  - another client writes a new version to Anna
#   ("read", key, cache_idx) - the session reads key through one of its caches
#   ("write", key, cache_idx)- the session writes key through one of its caches
steps = st.lists(
    st.one_of(
        st.tuples(st.just("external_write"), st.sampled_from(KEYS)),
        st.tuples(st.just("read"), st.sampled_from(KEYS), st.integers(0, 2)),
        st.tuples(st.just("write"), st.sampled_from(KEYS), st.integers(0, 2)),
    ),
    min_size=1, max_size=25,
)


def build_environment(level):
    anna = AnnaCluster(node_count=2, replication_factor=1,
                       latency_model=LatencyModel(jitter_enabled=False),
                       propagation_mode=AnnaCluster.PROPAGATE_PERIODIC)
    peers = {}
    caches = [ExecutorCache(f"cache-{i}", anna, peer_registry=peers) for i in range(3)]
    encapsulators = [LatticeEncapsulator(f"writer-{i}", level) for i in range(3)]
    return anna, caches, encapsulators


@settings(max_examples=40, deadline=None)
@given(steps)
def test_repeatable_read_invariant(schedule):
    level = ConsistencyLevel.DISTRIBUTED_SESSION_RR
    anna, caches, encapsulators = build_environment(level)
    external_clock = [0.0]
    for key in KEYS:
        anna.put(key, LWWLattice(Timestamp(0.0, "seed"), f"{key}-v0"))
    protocol = RepeatableReadProtocol()
    state = SessionState.create(level)
    expected = {}  # key -> value the session must keep seeing

    for step in schedule:
        if step[0] == "external_write":
            _, key = step
            external_clock[0] += 1.0
            anna.put(key, LWWLattice(Timestamp(external_clock[0], "external"),
                                     f"{key}-ext-{external_clock[0]}"))
        elif step[0] == "read":
            _, key, cache_index = step
            value = protocol.read(caches[cache_index], key, None, state)
            revealed = value.reveal()
            if key in expected:
                assert revealed == expected[key], \
                    f"repeatable-read violation for {key}"
            else:
                expected[key] = revealed
        else:
            _, key, cache_index = step
            external_clock[0] += 1.0
            lattice = encapsulators[cache_index].encapsulate(
                f"{key}-session-{external_clock[0]}", clock_ms=external_clock[0])
            merged = protocol.write(caches[cache_index], key, lattice, None, state)
            expected[key] = merged.reveal()


@settings(max_examples=40, deadline=None)
@given(steps)
def test_distributed_session_causal_invariant(schedule):
    level = ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL
    anna, caches, encapsulators = build_environment(level)
    for key in KEYS:
        anna.put(key, CausalLattice(VectorClock({"seed": 1}), f"{key}-v0"))
    protocol = DistributedSessionCausalProtocol()
    state = SessionState.create(level)
    external_counter = [1]

    for step in schedule:
        if step[0] == "external_write":
            _, key = step
            external_counter[0] += 1
            prior = anna.get_or_none(key)
            base = prior.vector_clock if isinstance(prior, CausalLattice) else VectorClock()
            anna.put(key, CausalLattice(base.increment("external"),
                                        f"{key}-ext-{external_counter[0]}"))
        elif step[0] == "read":
            _, key, cache_index = step
            value = protocol.read(caches[cache_index], key, None, state)
            assert isinstance(value, CausalLattice)
            # Causal invariant: the version read is never strictly older than
            # any version of this key in the session's dependency set.
            if key in state.dependencies:
                required = state.dependencies[key].clock
                assert not value.vector_clock.happened_before(required)
        else:
            _, key, cache_index = step
            prior = caches[cache_index].get_local(key)
            dependencies = {
                dep_key: entry.version
                for dep_key, entry in state.read_set.items()
                if isinstance(entry.version, VectorClock)
            }
            lattice = encapsulators[cache_index].encapsulate(
                f"{key}-session", prior=prior, dependencies=dependencies, key=key)
            protocol.write(caches[cache_index], key, lattice, None, state)

    # After any schedule, every cache the session touched can be made a causal
    # cut again (the bolt-on property is repairable from the KVS).
    for cache in caches:
        for violation_key, _dep in cache.violates_causal_cut():
            fresh = anna.get_or_none(violation_key)
            if fresh is not None:
                cache.receive_update(violation_key, fresh)
