"""Property tests for the discrete-event engine: determinism and queue laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FifoQueue, WorkQueue


def _replay(times):
    """Run one engine over ``times`` and return the firing order."""
    engine = Engine()
    fired = []
    for index, at_ms in enumerate(times):
        engine.at(at_ms, lambda i=index, t=at_ms: fired.append((engine.now_ms, t, i)))
    engine.run()
    return fired


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                          allow_infinity=False), max_size=60))
@settings(max_examples=60, deadline=None)
def test_same_schedule_replays_identically(times):
    assert _replay(times) == _replay(times)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                          allow_infinity=False), max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_with_fifo_ties(times):
    fired = _replay(times)
    observed = [t for _, t, _ in fired]
    assert observed == sorted(observed)
    # Among events at the same timestamp, insertion order wins.
    by_time = {}
    for _, t, index in fired:
        by_time.setdefault(t, []).append(index)
    for indices in by_time.values():
        assert indices == sorted(indices)


@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
), max_size=50))
@settings(max_examples=60, deadline=None)
def test_work_queue_is_fifo_and_non_overlapping(jobs):
    """Arrivals processed in order: service intervals never overlap and
    starts are non-decreasing, regardless of the arrival pattern."""
    queue = WorkQueue()
    intervals = []
    for arrival, service in sorted(jobs, key=lambda job: job[0]):
        start = queue.admit(arrival)
        assert start >= arrival
        end = start + service
        queue.release(end)
        intervals.append((start, end))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1  # FIFO: next job starts after the previous ends
    assert queue.completed == len(intervals)
    assert queue.busy_ms == sum(e - s for s, e in intervals)


@given(st.integers(min_value=1, max_value=5),
       st.lists(st.tuples(
           st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                     allow_infinity=False),
           st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                     allow_infinity=False),
       ), max_size=40))
@settings(max_examples=60, deadline=None)
def test_fifo_queue_conserves_work_and_respects_arrivals(servers, jobs):
    queue = FifoQueue(servers=servers)
    total_service = 0.0
    grants = []
    for arrival, service in sorted(jobs, key=lambda job: job[0]):
        start, end = queue.reserve(arrival, service)
        assert start >= arrival
        assert end - start == pytest.approx(service)
        grants.append((start, end))
        total_service += service
    assert queue.busy_ms == pytest.approx(total_service)
    # No instant ever has more overlapping reservations than servers.
    for probe, _ in grants:
        overlapping = sum(1 for s, e in grants if s <= probe < e)
        assert overlapping <= servers
