"""Property tests for the discrete-event engine: determinism and queue laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FifoQueue, WorkQueue


def _replay(times):
    """Run one engine over ``times`` and return the firing order."""
    engine = Engine()
    fired = []
    for index, at_ms in enumerate(times):
        engine.at(at_ms, lambda i=index, t=at_ms: fired.append((engine.now_ms, t, i)))
    engine.run()
    return fired


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                          allow_infinity=False), max_size=60))
@settings(max_examples=60, deadline=None)
def test_same_schedule_replays_identically(times):
    assert _replay(times) == _replay(times)


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                          allow_infinity=False), max_size=60))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_with_fifo_ties(times):
    fired = _replay(times)
    observed = [t for _, t, _ in fired]
    assert observed == sorted(observed)
    # Among events at the same timestamp, insertion order wins.
    by_time = {}
    for _, t, index in fired:
        by_time.setdefault(t, []).append(index)
    for indices in by_time.values():
        assert indices == sorted(indices)


#: One step of an interleaved schedule/cancel/fire workload: (op, operand).
#: op 0 schedules a foreground event, 1 a background event, 2 cancels a
#: previously created event (operand picks which), 3 fires one step.
_COUNTER_OPS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.integers(min_value=0, max_value=10_000),
              st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                        allow_infinity=False)),
    max_size=120)


@given(_COUNTER_OPS)
@settings(max_examples=80, deadline=None)
def test_pending_counters_match_brute_force(ops):
    """pending/foreground_pending (O(1) counters) must always equal a brute
    force count over the live heap, under any interleaving of schedule,
    cancel (including double cancels and cancels of fired events) and fire."""
    engine = Engine()
    created = []
    for op, pick, at_ms in ops:
        if op == 0:
            created.append(engine.at(at_ms, lambda: None))
        elif op == 1:
            created.append(engine.at(at_ms, lambda: None, background=True))
        elif op == 2 and created:
            engine.cancel(created[pick % len(created)])
        elif op == 3:
            engine.step()
        live = [entry[2] for entry in engine._heap if not entry[2].cancelled]
        assert engine.pending == len(live)
        assert engine.foreground_pending == sum(
            1 for event in live if not event.background)
        assert engine.pending >= 0 and engine.foreground_pending >= 0
    engine.run()
    assert engine.pending == 0
    assert engine.foreground_pending == 0


@given(st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
), max_size=50))
@settings(max_examples=60, deadline=None)
def test_work_queue_is_fifo_and_non_overlapping(jobs):
    """Arrivals processed in order: service intervals never overlap and
    starts are non-decreasing, regardless of the arrival pattern."""
    queue = WorkQueue()
    intervals = []
    for arrival, service in sorted(jobs, key=lambda job: job[0]):
        start = queue.admit(arrival)
        assert start >= arrival
        end = start + service
        queue.release(end)
        intervals.append((start, end))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1  # FIFO: next job starts after the previous ends
    assert queue.completed == len(intervals)
    assert queue.busy_ms == sum(e - s for s, e in intervals)


@given(st.integers(min_value=1, max_value=5),
       st.lists(st.tuples(
           st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                     allow_infinity=False),
           st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                     allow_infinity=False),
       ), max_size=40))
@settings(max_examples=60, deadline=None)
def test_fifo_queue_conserves_work_and_respects_arrivals(servers, jobs):
    queue = FifoQueue(servers=servers)
    total_service = 0.0
    grants = []
    for arrival, service in sorted(jobs, key=lambda job: job[0]):
        start, end = queue.reserve(arrival, service)
        assert start >= arrival
        assert end - start == pytest.approx(service)
        grants.append((start, end))
        total_service += service
    assert queue.busy_ms == pytest.approx(total_service)
    # No instant ever has more overlapping reservations than servers.
    for probe, _ in grants:
        overlapping = sum(1 for s, e in grants if s <= probe < e)
        assert overlapping <= servers
