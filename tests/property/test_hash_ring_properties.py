"""Property-based tests for consistent hashing."""

from hypothesis import given, settings, strategies as st

from repro.anna import HashRing

node_sets = st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=8,
                     unique=True)
keys = st.lists(st.text(alphabet="abcdefg0123456789", min_size=1, max_size=12),
                min_size=1, max_size=60, unique=True)


def build_ring(node_ids):
    ring = HashRing(virtual_nodes=32)
    for node in node_ids:
        ring.add_node(f"node-{node}")
    return ring


@settings(max_examples=40, deadline=None)
@given(node_sets, keys)
def test_placement_is_deterministic(node_ids, key_list):
    ring_a, ring_b = build_ring(node_ids), build_ring(node_ids)
    for key in key_list:
        assert ring_a.primary(key) == ring_b.primary(key)


@settings(max_examples=40, deadline=None)
@given(node_sets, keys, st.integers(min_value=1, max_value=5))
def test_owners_are_distinct_members(node_ids, key_list, count):
    ring = build_ring(node_ids)
    for key in key_list:
        owners = ring.owners(key, count)
        assert len(owners) == len(set(owners)) == min(count, len(node_ids))
        assert all(owner in ring.nodes for owner in owners)


@settings(max_examples=40, deadline=None)
@given(node_sets, keys)
def test_adding_a_node_only_moves_keys_to_that_node(node_ids, key_list):
    """Consistent-hashing monotonicity: existing keys never shuffle between
    surviving nodes when a node joins."""
    ring = build_ring(node_ids)
    before = {key: ring.primary(key) for key in key_list}
    ring.add_node("node-joined")
    for key in key_list:
        after = ring.primary(key)
        assert after == before[key] or after == "node-joined"


@settings(max_examples=40, deadline=None)
@given(node_sets, keys)
def test_removing_a_node_only_moves_its_keys(node_ids, key_list):
    ring = build_ring(node_ids)
    victim = ring.nodes[0]
    before = {key: ring.primary(key) for key in key_list}
    ring.remove_node(victim)
    for key in key_list:
        if before[key] == victim:
            assert ring.primary(key) != victim
        else:
            assert ring.primary(key) == before[key]
