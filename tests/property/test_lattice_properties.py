"""Property-based tests: lattice merge is associative, commutative, idempotent.

These are the algebraic properties Anna's coordination-free consistency rests
on (§2.2): merge must be insensitive to the batching, ordering and repetition
of requests.
"""

from hypothesis import given, settings, strategies as st

from repro.lattices import (
    BoolOrLattice,
    CausalLattice,
    LWWLattice,
    MapLattice,
    MaxIntLattice,
    MinIntLattice,
    OrderedSetLattice,
    SetLattice,
    Timestamp,
    VectorClock,
)

# -- strategies -------------------------------------------------------------------------
timestamps = st.builds(
    Timestamp,
    clock_ms=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    node_id=st.sampled_from(["n1", "n2", "n3"]),
    sequence=st.integers(min_value=0, max_value=50),
)
lww_lattices = st.builds(LWWLattice, timestamp=timestamps,
                         value=st.integers(min_value=-100, max_value=100))
max_ints = st.builds(MaxIntLattice, st.integers(min_value=-1000, max_value=1000))
min_ints = st.builds(MinIntLattice, st.integers(min_value=-1000, max_value=1000))
bools = st.builds(BoolOrLattice, st.booleans())
set_lattices = st.builds(SetLattice, st.sets(st.integers(min_value=0, max_value=20)))
ordered_sets = st.builds(OrderedSetLattice, st.sets(st.integers(min_value=0, max_value=20)))
vector_clocks = st.builds(
    VectorClock,
    st.dictionaries(st.sampled_from(["a", "b", "c", "d"]),
                    st.integers(min_value=0, max_value=8), max_size=4),
)
map_lattices = st.builds(
    MapLattice,
    st.dictionaries(st.sampled_from(["k1", "k2", "k3"]), max_ints, max_size=3),
)
causal_lattices = st.builds(
    CausalLattice,
    vector_clock=vector_clocks,
    value=st.sampled_from(["red", "green", "blue", "yellow"]),
    dependencies=st.dictionaries(st.sampled_from(["x", "y"]), vector_clocks, max_size=2),
)

scalar_like = st.one_of(lww_lattices, max_ints, min_ints, bools, set_lattices,
                        ordered_sets, vector_clocks, map_lattices)


def pairs_of_same_type(strategy):
    return strategy.flatmap(
        lambda example: st.tuples(st.just(example), _same_type_strategy(type(example))))


def _same_type_strategy(cls):
    return {
        LWWLattice: lww_lattices,
        MaxIntLattice: max_ints,
        MinIntLattice: min_ints,
        BoolOrLattice: bools,
        SetLattice: set_lattices,
        OrderedSetLattice: ordered_sets,
        VectorClock: vector_clocks,
        MapLattice: map_lattices,
        CausalLattice: causal_lattices,
    }[cls]


def triples(cls):
    strategy = _same_type_strategy(cls)
    return st.tuples(strategy, strategy, strategy)


ALL_TYPES = [LWWLattice, MaxIntLattice, MinIntLattice, BoolOrLattice, SetLattice,
             OrderedSetLattice, VectorClock, MapLattice, CausalLattice]


# -- properties -----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ALL_TYPES).flatmap(triples))
def test_merge_is_associative(values):
    a, b, c = values
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ALL_TYPES).flatmap(triples))
def test_merge_is_commutative(values):
    a, b, _ = values
    assert a.merge(b) == b.merge(a)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ALL_TYPES).flatmap(triples))
def test_merge_is_idempotent(values):
    a, b, _ = values
    merged = a.merge(b)
    assert merged.merge(merged) == merged
    assert a.merge(a) == a


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ALL_TYPES).flatmap(triples))
def test_merge_is_monotone(values):
    """Merging never loses information: a ⊔ b absorbs both operands."""
    a, b, _ = values
    merged = a.merge(b)
    assert merged.merge(a) == merged
    assert merged.merge(b) == merged


@settings(max_examples=60, deadline=None)
@given(st.lists(max_ints, min_size=1, max_size=8))
def test_merge_order_insensitive_over_sequences(lattices):
    """Any permutation and grouping of a batch of updates converges."""
    left_to_right = lattices[0]
    for lattice in lattices[1:]:
        left_to_right = left_to_right.merge(lattice)
    right_to_left = lattices[-1]
    for lattice in reversed(lattices[:-1]):
        right_to_left = right_to_left.merge(lattice)
    assert left_to_right == right_to_left


@settings(max_examples=60, deadline=None)
@given(triples(CausalLattice))
def test_causal_merge_retains_or_dominates_every_sibling(values):
    """No sibling disappears unless another sibling dominates it."""
    a, b, _ = values
    merged = a.merge(b)
    merged_clock = merged.vector_clock
    for source in (a, b):
        for clock, _value in source.siblings:
            assert merged_clock.dominates_or_equal(clock)


@settings(max_examples=60, deadline=None)
@given(triples(CausalLattice))
def test_causal_reveal_is_deterministic(values):
    a, b, _ = values
    assert a.merge(b).reveal() == b.merge(a).reveal()
