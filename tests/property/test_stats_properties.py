"""Property-based tests for statistics helpers and size estimation."""

from hypothesis import given, settings, strategies as st

from repro.lattices import estimate_size
from repro.sim import mean, median, percentile

samples = st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                             allow_infinity=False), min_size=1, max_size=200)


@settings(max_examples=100, deadline=None)
@given(samples)
def test_percentiles_bounded_by_min_and_max(values):
    for pct in (0, 25, 50, 90, 99, 100):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)


@settings(max_examples=100, deadline=None)
@given(samples)
def test_percentiles_monotone_in_pct(values):
    results = [percentile(values, pct) for pct in (0, 10, 50, 90, 100)]
    assert results == sorted(results)


@settings(max_examples=100, deadline=None)
@given(samples)
def test_percentile_invariant_under_permutation(values):
    assert percentile(values, 75) == percentile(list(reversed(values)), 75)


@settings(max_examples=100, deadline=None)
@given(samples)
def test_mean_between_min_and_max(values):
    # A tiny tolerance absorbs floating-point summation error.
    slack = 1e-6 * max(1.0, max(values))
    assert min(values) - slack <= mean(values) <= max(values) + slack


@settings(max_examples=100, deadline=None)
@given(samples, st.floats(min_value=0.5, max_value=3.0))
def test_percentile_scales_linearly(values, factor):
    scaled = [v * factor for v in values]
    assert percentile(scaled, 50) == __import__("pytest").approx(
        median(values) * factor, rel=1e-9, abs=1e-6)


nested_values = st.recursive(
    st.one_of(st.none(), st.booleans(), st.integers(-1000, 1000),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=20), st.binary(max_size=20)),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=5), children, max_size=5),
    ),
    max_leaves=20,
)


@settings(max_examples=100, deadline=None)
@given(nested_values)
def test_estimate_size_is_positive_and_monotone_under_nesting(value):
    size = estimate_size(value)
    assert size >= 1
    assert estimate_size([value, value]) >= size
