"""Property-based tests for the vector-clock partial order."""

from hypothesis import given, settings, strategies as st

from repro.lattices import VectorClock

clocks = st.builds(
    VectorClock,
    st.dictionaries(st.sampled_from(["a", "b", "c", "d", "e"]),
                    st.integers(min_value=0, max_value=6), max_size=5),
)


@settings(max_examples=100, deadline=None)
@given(clocks, clocks)
def test_exactly_one_ordering_relation_holds(a, b):
    """For any two clocks: equal, a<b, b<a, or concurrent — exactly one."""
    relations = [a == b, a.dominates(b), b.dominates(a), a.concurrent_with(b)]
    assert sum(bool(r) for r in relations) == 1


@settings(max_examples=100, deadline=None)
@given(clocks, clocks)
def test_merge_is_least_upper_bound(a, b):
    merged = a.merge(b)
    assert merged.dominates_or_equal(a)
    assert merged.dominates_or_equal(b)
    # Least: no entry exceeds the pairwise maximum.
    for node, value in merged.reveal().items():
        assert value == max(a.get(node), b.get(node))


@settings(max_examples=100, deadline=None)
@given(clocks, clocks, clocks)
def test_dominance_is_transitive(a, b, c):
    if a.dominates_or_equal(b) and b.dominates_or_equal(c):
        assert a.dominates_or_equal(c)


@settings(max_examples=100, deadline=None)
@given(clocks)
def test_dominance_is_irreflexive(a):
    assert not a.dominates(a)
    assert a.dominates_or_equal(a)


@settings(max_examples=100, deadline=None)
@given(clocks, st.sampled_from(["a", "b", "z"]))
def test_increment_strictly_advances(clock, node):
    assert clock.increment(node).dominates(clock)


@settings(max_examples=100, deadline=None)
@given(clocks, clocks)
def test_happened_before_is_antisymmetric(a, b):
    assert not (a.happened_before(b) and b.happened_before(a))
