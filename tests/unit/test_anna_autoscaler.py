"""Unit tests for the storage-tier autoscaler."""

from repro.anna import (
    AnnaCluster,
    StorageAutoscaler,
    StorageAutoscalerConfig,
    hot_key_report,
)
from repro.lattices import LWWLattice, Timestamp


def lww(value, clock=1.0):
    return LWWLattice(Timestamp(clock, "t"), value)


def make_cluster(nodes=2):
    return AnnaCluster(node_count=nodes, replication_factor=1)


class TestScaleUpAndDown:
    def test_scale_up_on_heavy_access(self):
        anna = make_cluster(2)
        config = StorageAutoscalerConfig(scale_up_accesses_per_node=10,
                                         scale_down_accesses_per_node=0)
        scaler = StorageAutoscaler(anna, config)
        anna.put("k", lww(1))
        for _ in range(50):
            anna.get("k")
        report = scaler.tick()
        assert report.nodes_added == 1
        assert anna.node_count() == 3

    def test_scale_down_when_idle(self):
        anna = make_cluster(3)
        config = StorageAutoscalerConfig(scale_up_accesses_per_node=1e9,
                                         scale_down_accesses_per_node=10,
                                         min_nodes=2)
        scaler = StorageAutoscaler(anna, config)
        report = scaler.tick()
        assert report.nodes_removed == 1
        assert anna.node_count() == 2

    def test_scale_down_respects_min_nodes(self):
        anna = make_cluster(1)
        scaler = StorageAutoscaler(anna, StorageAutoscalerConfig(min_nodes=1))
        report = scaler.tick()
        assert report.nodes_removed == 0
        assert anna.node_count() == 1

    def test_scale_up_respects_max_nodes(self):
        anna = make_cluster(2)
        config = StorageAutoscalerConfig(scale_up_accesses_per_node=1,
                                         max_nodes=2, scale_down_accesses_per_node=0)
        scaler = StorageAutoscaler(anna, config)
        anna.put("k", lww(1))
        for _ in range(100):
            anna.get("k")
        assert scaler.tick().nodes_added == 0

    def test_window_accounting_resets_between_ticks(self):
        anna = make_cluster(2)
        config = StorageAutoscalerConfig(scale_up_accesses_per_node=20,
                                         scale_down_accesses_per_node=0)
        scaler = StorageAutoscaler(anna, config)
        anna.put("k", lww(1))
        for _ in range(100):
            anna.get("k")
        first = scaler.tick()
        second = scaler.tick()
        assert first.accesses_per_node > second.accesses_per_node


class TestHotKeysAndTiering:
    def test_hot_keys_get_extra_replicas(self):
        anna = make_cluster(4)
        config = StorageAutoscalerConfig(hot_key_threshold=10,
                                         hot_key_extra_replicas=2,
                                         scale_up_accesses_per_node=1e9,
                                         scale_down_accesses_per_node=0)
        scaler = StorageAutoscaler(anna, config)
        anna.put("hot", lww(1))
        for _ in range(20):
            anna.get("hot")
        report = scaler.tick()
        assert "hot" in report.keys_boosted
        assert len(anna.replicas_of("hot")) >= 2

    def test_cold_keys_demoted_to_disk(self):
        anna = make_cluster(1)
        config = StorageAutoscalerConfig(cold_key_age_ms=1_000.0,
                                         scale_up_accesses_per_node=1e9,
                                         scale_down_accesses_per_node=0)
        scaler = StorageAutoscaler(anna, config)
        anna.put("cold", lww(1))
        report = scaler.tick(now_ms=10_000.0)
        assert report.keys_demoted >= 1
        node = anna.node(anna.replicas_of("cold")[0])
        assert node.tier_of("cold") == node.DISK_TIER

    def test_recently_used_keys_stay_in_memory(self):
        anna = make_cluster(1)
        config = StorageAutoscalerConfig(cold_key_age_ms=1_000_000.0,
                                         scale_up_accesses_per_node=1e9,
                                         scale_down_accesses_per_node=0)
        scaler = StorageAutoscaler(anna, config)
        anna.put("warm", lww(1))
        report = scaler.tick(now_ms=10.0)
        assert report.keys_demoted == 0


class TestHotKeyReport:
    def test_ranks_by_access_count(self):
        anna = make_cluster(2)
        anna.put("a", lww(1))
        anna.put("b", lww(2))
        for _ in range(5):
            anna.get("a")
        anna.get("b")
        report = hot_key_report(anna, top_n=1)
        assert list(report) == ["a"]
