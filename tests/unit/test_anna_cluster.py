"""Unit tests for the Anna KVS cluster."""

import pytest

from repro.anna import AnnaCluster
from repro.errors import KeyNotFoundError
from repro.lattices import LWWLattice, MaxIntLattice, Timestamp
from repro.sim import LatencyModel, RequestContext


@pytest.fixture
def anna():
    return AnnaCluster(node_count=4, replication_factor=2,
                       latency_model=LatencyModel(jitter_enabled=False))


def lww(value, clock=1.0):
    return LWWLattice(Timestamp(clock, "test"), value)


class TestAnnaBasics:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            AnnaCluster(node_count=0)
        with pytest.raises(ValueError):
            AnnaCluster(node_count=1, replication_factor=0)
        with pytest.raises(ValueError):
            AnnaCluster(propagation_mode="bogus")

    def test_put_rejects_non_lattice(self, anna):
        with pytest.raises(TypeError):
            anna.put("k", 42)

    def test_put_get_roundtrip(self, anna):
        anna.put("k", lww("value"))
        assert anna.get("k").reveal() == "value"
        assert anna.contains("k")

    def test_get_missing_raises_and_get_or_none_returns_none(self, anna):
        with pytest.raises(KeyNotFoundError):
            anna.get("ghost")
        assert anna.get_or_none("ghost") is None

    def test_put_merges_lattices(self, anna):
        anna.put("c", MaxIntLattice(5))
        anna.put("c", MaxIntLattice(2))
        assert anna.get("c").reveal() == 5

    def test_plain_value_helpers_wrap_in_lww(self, anna):
        anna.put_plain("meta", {"a": 1})
        assert anna.get_plain("meta") == {"a": 1}
        assert isinstance(anna.get("meta"), LWWLattice)

    def test_delete(self, anna):
        anna.put("k", lww(1))
        assert anna.delete("k")
        assert not anna.contains("k")

    def test_replication_factor_replicas(self, anna):
        anna.put("k", lww(1))
        assert len(anna.replicas_of("k")) == 2

    def test_latency_charged_for_remote_operations(self, anna):
        ctx = RequestContext()
        anna.put("k", lww("x"), ctx)
        anna.get("k", ctx)
        assert ctx.count("anna", "put") == 1
        assert ctx.count("anna", "get") == 1
        assert ctx.elapsed_ms > 0


class TestAnnaMembership:
    def test_add_node_preserves_data(self, anna):
        for index in range(50):
            anna.put(f"k{index}", lww(index))
        anna.add_node()
        for index in range(50):
            assert anna.get(f"k{index}").reveal() == index
        assert anna.node_count() == 5

    def test_remove_node_preserves_data(self, anna):
        for index in range(50):
            anna.put(f"k{index}", lww(index))
        anna.remove_node(anna.node_ids[0])
        for index in range(50):
            assert anna.get(f"k{index}").reveal() == index
        assert anna.node_count() == 3

    def test_cannot_remove_last_node(self):
        single = AnnaCluster(node_count=1)
        with pytest.raises(ValueError):
            single.remove_node(single.node_ids[0])

    def test_remove_unknown_node_raises(self, anna):
        with pytest.raises(KeyError):
            anna.remove_node("ghost")

    def test_boost_replication_adds_replicas(self, anna):
        anna.put("hot", lww(1))
        baseline = len(anna.replicas_of("hot"))
        anna.boost_replication("hot", extra_replicas=2)
        assert len(anna.replicas_of("hot")) == min(4, baseline + 2)

    def test_boost_replication_rejects_negative(self, anna):
        with pytest.raises(ValueError):
            anna.boost_replication("k", -1)


class TestCacheIndexAndPropagation:
    def test_ingest_cached_keys_updates_index(self, anna):
        anna.ingest_cached_keys("cache-1", ["a", "b"])
        assert anna.cache_index.caches_for("a") == frozenset({"cache-1"})

    def test_immediate_propagation_notifies_holding_caches(self, anna):
        received = []
        anna.register_update_listener("cache-1", lambda k, v: received.append((k, v.reveal())))
        anna.ingest_cached_keys("cache-1", ["k"])
        anna.put("k", lww("fresh", clock=9.0))
        assert received == [("k", "fresh")]

    def test_propagation_skips_caches_without_the_key(self, anna):
        received = []
        anna.register_update_listener("cache-1", lambda k, v: received.append(k))
        anna.ingest_cached_keys("cache-1", ["other"])
        anna.put("k", lww("fresh"))
        assert received == []

    def test_periodic_propagation_defers_until_flush(self):
        anna = AnnaCluster(node_count=2, propagation_mode=AnnaCluster.PROPAGATE_PERIODIC)
        received = []
        anna.register_update_listener("cache-1", lambda k, v: received.append(k))
        anna.ingest_cached_keys("cache-1", ["k"])
        anna.put("k", lww("v1"))
        assert received == []
        assert anna.pending_update_count() == 1
        flushed = anna.flush_updates()
        assert flushed == 1
        assert received == ["k"]
        assert anna.pending_update_count() == 0

    def test_unregister_listener_drops_cache_from_index(self, anna):
        anna.register_update_listener("cache-1", lambda k, v: None)
        anna.ingest_cached_keys("cache-1", ["a"])
        anna.unregister_update_listener("cache-1")
        assert anna.cache_index.caches_for("a") == frozenset()
