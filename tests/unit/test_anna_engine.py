"""Unit tests for the Anna storage tier as a discrete-event participant.

Covers the engine-attached behaviours layered onto :class:`AnnaCluster`:
quorum-of-1 multi-master writes with anti-entropy gossip, bounded node work
queues (backpressure + read redirect), service-time charging, membership
rebalancing under divergent replicas, and the storage autoscaler running as a
recurring engine event.
"""

import pytest

from repro.anna import (
    AnnaCluster,
    StorageAutoscaler,
    StorageAutoscalerConfig,
    StorageServiceModel,
)
from repro.errors import StorageOverloadError
from repro.lattices import LWWLattice, SetLattice, Timestamp
from repro.sim import Engine, LatencyModel, RequestContext, SimClock


def lww(value, clock=1.0):
    return LWWLattice(Timestamp(clock, "test"), value)


def ctx_at(now_ms: float = 0.0) -> RequestContext:
    return RequestContext(clock=SimClock(now_ms))


def make_cluster(**kwargs) -> AnnaCluster:
    kwargs.setdefault("node_count", 4)
    kwargs.setdefault("replication_factor", 2)
    kwargs.setdefault("latency_model", LatencyModel(jitter_enabled=False))
    return AnnaCluster(**kwargs)


class TestQuorumOfOneAndGossip:
    def test_engine_put_lands_on_one_replica_until_gossip(self):
        anna = make_cluster(gossip_interval_ms=25.0)
        engine = Engine()
        anna.attach_engine(engine)
        anna.put("k", lww("v"), ctx_at())
        holders = [owner for owner in anna.replicas_of("k")
                   if anna.node(owner).contains("k")]
        assert len(holders) == 1
        assert anna.dirty_key_count() == 1

        exchanged = anna.run_gossip_round()
        assert exchanged == 1
        holders = [owner for owner in anna.replicas_of("k")
                   if anna.node(owner).contains("k")]
        assert len(holders) == 2
        assert anna.dirty_key_count() == 0
        anna.detach_engine()

    def test_gossip_merges_do_not_count_as_client_load(self):
        anna = make_cluster(gossip_interval_ms=25.0)
        engine = Engine()
        anna.attach_engine(engine)
        anna.put("k", lww("v"), ctx_at())
        accesses_before = anna.total_access_count()
        anna.run_gossip_round()
        assert anna.total_access_count() == accesses_before
        replicas = [anna.node(owner) for owner in anna.replicas_of("k")]
        assert sum(node.replica_merges for node in replicas) == 1
        anna.detach_engine()

    def test_detach_engine_flushes_pending_gossip(self):
        anna = make_cluster(gossip_interval_ms=25.0)
        anna.attach_engine(Engine())
        anna.put("k", lww("v"), ctx_at())
        assert anna.dirty_key_count() == 1
        anna.detach_engine()
        assert anna.dirty_key_count() == 0
        for owner in anna.replicas_of("k"):
            assert anna.node(owner).contains("k")

    def test_periodic_gossip_runs_on_virtual_time(self):
        anna = make_cluster(gossip_interval_ms=10.0)
        engine = Engine()
        anna.attach_engine(engine)
        # Foreground work keeps the recurring gossip tick alive past 10 ms.
        engine.at(5.0, lambda: anna.put("k", lww("v"), ctx_at(5.0)))
        engine.at(30.0, lambda: None)
        engine.run()
        assert anna.gossip_rounds >= 1
        assert anna.dirty_key_count() == 0
        anna.detach_engine()

    def test_zero_gossip_interval_falls_back_to_fanout(self):
        anna = make_cluster(gossip_interval_ms=0.0)
        anna.attach_engine(Engine())
        anna.put("k", lww("v"), ctx_at())
        for owner in anna.replicas_of("k"):
            assert anna.node(owner).contains("k")
        assert anna.dirty_key_count() == 0
        anna.detach_engine()

    def test_divergent_replicas_converge_after_one_round(self):
        # Two concurrent writers land on *different* replicas (the first
        # replica's bounded queue is busy when the second write arrives) and
        # the set lattice merges both elements after one gossip exchange.
        anna = make_cluster(node_count=3, replication_factor=2,
                            node_queue_bound=1,
                            storage_service=StorageServiceModel(memory_base_ms=5.0),
                            gossip_interval_ms=25.0)
        anna.attach_engine(Engine())
        anna.put("s", SetLattice({"a"}), ctx_at())
        anna.put("s", SetLattice({"b"}), ctx_at())
        owners = anna.replicas_of("s")
        values = [anna.node(owner).peek("s") for owner in owners]
        assert {frozenset(v.reveal()) for v in values if v is not None} == \
            {frozenset({"a"}), frozenset({"b"})}

        anna.run_gossip_round()
        for owner in owners:
            assert anna.node(owner).peek("s").reveal() == {"a", "b"}
        anna.detach_engine()


class TestBoundedNodeQueues:
    def saturated_cluster(self):
        anna = make_cluster(node_count=2, replication_factor=1,
                            node_queue_bound=2,
                            storage_service=StorageServiceModel(memory_base_ms=5.0),
                            gossip_interval_ms=25.0)
        anna.attach_engine(Engine())
        return anna

    def test_put_rejects_when_every_replica_full(self):
        anna = self.saturated_cluster()
        anna.put("k", lww(0), ctx_at())
        anna.put("k", lww(1), ctx_at())
        with pytest.raises(StorageOverloadError):
            anna.put("k", lww(2), ctx_at())
        assert anna.total_rejections() == 1
        anna.detach_engine()

    def test_skipped_replica_on_successful_put_is_not_a_rejection(self):
        # Regression: landing on a later replica because an earlier one was
        # busy used to count a rejection at the skipped node, inflating the
        # bench's storage.rejections for puts that succeeded.
        anna = make_cluster(node_count=3, replication_factor=2,
                            node_queue_bound=1,
                            storage_service=StorageServiceModel(memory_base_ms=5.0),
                            gossip_interval_ms=25.0)
        anna.attach_engine(Engine())
        anna.put("k", lww(0), ctx_at())
        anna.put("k", lww(1), ctx_at())  # first owner busy -> lands on second
        assert anna.total_rejections() == 0
        anna.detach_engine()

    def test_queue_depth_is_bounded_not_unbounded(self):
        anna = self.saturated_cluster()
        accepted = 0
        for index in range(50):
            try:
                anna.put("k", lww(index), ctx_at())
                accepted += 1
            except StorageOverloadError:
                pass
        owner = anna.replicas_of("k")[0]
        assert accepted == 2
        assert anna.node(owner).work_queue.depth(0.0) <= 2
        assert anna.total_rejections() == 48
        anna.detach_engine()

    def test_waiting_writer_is_charged_queueing_delay(self):
        anna = self.saturated_cluster()
        first = ctx_at()
        anna.put("k", lww(0), first)
        second = ctx_at()
        anna.put("k", lww(1), second)
        # The second writer waited out the first's 5 ms service slot (give or
        # take the sub-microsecond skew of the preceding network charges).
        assert second.total("anna", "queue") == pytest.approx(5.0, abs=0.01)
        assert second.total("anna", "service") == pytest.approx(5.0, abs=0.01)
        assert first.total("anna", "queue") == 0.0
        anna.detach_engine()

    def test_reads_redirect_to_less_loaded_replica(self):
        anna = make_cluster(node_count=3, replication_factor=2,
                            node_queue_bound=1,
                            storage_service=StorageServiceModel(memory_base_ms=5.0),
                            gossip_interval_ms=25.0)
        anna.put("k", lww("v"))  # synchronous fan-out: every replica holds it
        anna.attach_engine(Engine())
        first, second = anna.replicas_of("k")
        anna.node(first).work_queue.reserve(0.0, 5.0)  # saturate the primary
        reader = ctx_at()
        value = anna.get("k", reader)
        assert value.reveal() == "v"
        # Redirected: no queueing delay, and the skip is recorded as a
        # redirect — not a rejection, because the read still succeeded.
        assert reader.total("anna", "queue") == 0.0
        assert anna.node(first).read_redirects == 1
        assert anna.node(first).rejections == 0
        assert anna.node(second).stats("k").reads == 1
        anna.detach_engine()

    def test_fanout_mode_still_backpressures_on_engine(self):
        # gossip_interval_ms=0 keeps instant fan-out while attached; the
        # bounded queue must still reject charged puts at a saturated primary.
        anna = make_cluster(node_count=2, replication_factor=1,
                            node_queue_bound=2,
                            storage_service=StorageServiceModel(memory_base_ms=5.0),
                            gossip_interval_ms=0.0)
        anna.attach_engine(Engine())
        anna.put("k", lww(0), ctx_at())
        anna.put("k", lww(1), ctx_at())
        with pytest.raises(StorageOverloadError):
            anna.put("k", lww(2), ctx_at())
        assert anna.total_rejections() == 1
        anna.detach_engine()

    def test_background_writes_never_queue(self):
        anna = self.saturated_cluster()
        anna.put("k", lww(0), ctx_at())
        anna.put("k", lww(1), ctx_at())
        # An uncharged write-back (ctx=None) is background traffic: it cannot
        # be rejected and does not occupy the work queue.
        merged = anna.put("k", lww(2, clock=9.0))
        assert merged.reveal() == 2
        anna.detach_engine()


class TestServiceCharging:
    def test_sequential_path_charges_service_but_never_queues(self):
        anna = make_cluster(storage_service=StorageServiceModel(
            memory_base_ms=0.5, memory_bandwidth_bytes_per_ms=1e9))
        ctx = ctx_at()
        anna.put("k", lww("v"), ctx)
        assert ctx.total("anna", "service") == pytest.approx(0.5, rel=1e-3)
        assert ctx.total("anna", "queue") == 0.0

    def test_disk_tier_service_slower_than_memory(self):
        model = StorageServiceModel()
        assert model.service_ms("disk", 1024) > model.service_ms("memory", 1024)

    def test_one_client_engine_run_matches_sequential_charges(self):
        def run(with_engine: bool):
            anna = make_cluster(gossip_interval_ms=25.0)
            engine = Engine()
            if with_engine:
                anna.attach_engine(engine)
            charges = []
            clock = 0.0
            for index in range(20):
                ctx = ctx_at(clock)
                anna.put(f"k{index % 5}", lww(index, clock=index), ctx)
                anna.get(f"k{index % 5}", ctx)
                charges.append(ctx.clock.now_ms - clock)
                clock += 10.0
            if with_engine:
                anna.detach_engine()
            return charges

        assert run(False) == pytest.approx(run(True))


class TestRebalanceUnderEngine:
    def test_add_node_migrates_dirty_state_without_loss(self):
        anna = make_cluster(node_count=3, replication_factor=2,
                            node_queue_bound=1,
                            storage_service=StorageServiceModel(memory_base_ms=5.0),
                            gossip_interval_ms=25.0)
        anna.attach_engine(Engine())
        # Staggered writes (bound=1, 5 ms service): no two collide at a node.
        for index in range(40):
            anna.put(f"k{index}", SetLattice({f"v{index}"}), ctx_at(index * 10.0))
        # Two concurrent writers at t=1000 diverge onto different replicas.
        anna.put("shared", SetLattice({"a"}), ctx_at(1_000.0))
        anna.put("shared", SetLattice({"b"}), ctx_at(1_000.0))

        new_node = anna.add_node()
        anna.run_gossip_round()
        migrated = anna.node(new_node).key_count()
        assert migrated > 0
        for index in range(40):
            assert anna.get(f"k{index}").reveal() == {f"v{index}"}
        assert anna.get("shared").reveal() == {"a", "b"}
        anna.detach_engine()

    def test_remove_node_preserves_ungossiped_writes(self):
        anna = make_cluster(node_count=3, replication_factor=2,
                            gossip_interval_ms=25.0)
        anna.attach_engine(Engine())
        anna.put("k", lww("fresh", clock=5.0), ctx_at())
        holder = next(owner for owner in anna.replicas_of("k")
                      if anna.node(owner).contains("k"))
        # The accepting replica leaves before gossip ever ran: its write must
        # reach the remaining owners through the departure drain.
        anna.remove_node(holder)
        assert anna.get("k").reveal() == "fresh"
        anna.detach_engine()

    def test_add_node_merges_replica_copies_not_first_copy_wins(self):
        # Regression: an ex-owner can keep a stale copy of a key whose
        # ownership migrated away from it; seeding a new node from whichever
        # node iterates first used to resurrect that stale version.
        anna = make_cluster(node_count=2, replication_factor=1)
        anna.put("k", lww("v0", clock=1.0))
        # Grow the ring until ownership of "k" moves off every original holder.
        original_holders = set(anna.replicas_of("k"))
        for _ in range(6):
            anna.add_node()
        anna.put("k", lww("v1", clock=2.0))
        # Keep adding nodes: every new owner must observe the newest write,
        # no matter which stale ex-owner copies happen to linger.
        for _ in range(4):
            anna.add_node()
            assert anna.get("k").reveal() == "v1"
        assert original_holders  # the scenario really exercised migration

    def test_migration_does_not_inflate_access_stats(self):
        anna = make_cluster(node_count=3, replication_factor=2)
        for index in range(30):
            anna.put(f"k{index}", lww(index), ctx_at())
        before = anna.total_access_count()
        anna.add_node()
        # Migration copies are system traffic: no new client accesses.
        assert anna.total_access_count() == before
        # Removing a node drops its per-key counters but the drain's merges
        # must not register as client load on the receiving nodes either.
        anna.remove_node(anna.node_ids[0])
        assert anna.total_access_count() <= before


class TestStorageAutoscalerOnEngine:
    def test_tick_runs_as_recurring_engine_event(self):
        anna = make_cluster(gossip_interval_ms=25.0)
        scaler = StorageAutoscaler(anna, StorageAutoscalerConfig(
            scale_up_accesses_per_node=5.0, scale_down_accesses_per_node=0.0,
            hot_key_threshold=8, hot_key_extra_replicas=1, max_nodes=8))
        anna.set_autoscaler(scaler, interval_ms=20.0)
        engine = Engine()
        anna.attach_engine(engine)

        def burst(at_ms):
            ctx = ctx_at(at_ms)
            for _ in range(5):
                anna.put("hot", lww("v", clock=at_ms), ctx)
                anna.get("hot", ctx)
        for at_ms in range(0, 100, 10):
            engine.at(float(at_ms), lambda at=at_ms: burst(float(at)))
        engine.run()
        anna.detach_engine()

        assert len(scaler.history) >= 2
        assert any(report.nodes_added for report in scaler.history)
        assert any("hot" in report.keys_boosted for report in scaler.history)
        assert scaler.node_count_timeline[-1][1] == anna.node_count()
        # Boosted replication really widened the replica set.
        assert len(anna.replicas_of("hot")) > 2

    def test_detach_engine_stops_the_tick(self):
        anna = make_cluster()
        scaler = StorageAutoscaler(anna)
        anna.set_autoscaler(scaler, interval_ms=10.0)
        engine = Engine()
        anna.attach_engine(engine)
        anna.detach_engine()
        engine.at(5.0, lambda: None)
        engine.run(until_ms=100.0)
        assert scaler.history == []

    def test_set_autoscaler_rejects_bad_interval(self):
        anna = make_cluster()
        with pytest.raises(ValueError):
            anna.set_autoscaler(StorageAutoscaler(anna), interval_ms=0.0)
