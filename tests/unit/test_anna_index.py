"""Unit tests for the key-to-cache index."""

from repro.anna import KeyCacheIndex


class TestSnapshots:
    def test_ingest_snapshot_sets_membership(self):
        index = KeyCacheIndex()
        index.ingest_snapshot("c1", ["a", "b"])
        assert index.caches_for("a") == frozenset({"c1"})
        assert index.keys_for("c1") == frozenset({"a", "b"})

    def test_new_snapshot_replaces_old(self):
        index = KeyCacheIndex()
        index.ingest_snapshot("c1", ["a", "b"])
        index.ingest_snapshot("c1", ["b", "c"])
        assert "a" not in index
        assert index.caches_for("c") == frozenset({"c1"})

    def test_multiple_caches_tracked(self):
        index = KeyCacheIndex()
        index.ingest_snapshot("c1", ["a"])
        index.ingest_snapshot("c2", ["a"])
        assert index.replication_factor("a") == 2

    def test_drop_cache(self):
        index = KeyCacheIndex()
        index.ingest_snapshot("c1", ["a"])
        index.drop_cache("c1")
        assert index.caches_for("a") == frozenset()
        assert index.tracked_caches() == []


class TestIncrementalEntries:
    def test_add_and_remove_entry(self):
        index = KeyCacheIndex()
        index.add_entry("c1", "k")
        assert index.caches_for("k") == frozenset({"c1"})
        index.remove_entry("c1", "k")
        assert "k" not in index

    def test_remove_unknown_entry_is_noop(self):
        index = KeyCacheIndex()
        index.remove_entry("c1", "k")
        assert index.tracked_keys() == []


class TestPropagationTargets:
    def test_excludes_writer(self):
        index = KeyCacheIndex()
        index.ingest_snapshot("c1", ["k"])
        index.ingest_snapshot("c2", ["k"])
        assert index.propagation_targets("k", exclude="c1") == frozenset({"c2"})

    def test_untracked_key_has_no_targets(self):
        assert KeyCacheIndex().propagation_targets("ghost") == frozenset()


class TestOverheadAccounting:
    def test_empty_index_overhead(self):
        overhead = KeyCacheIndex().overhead()
        assert overhead.tracked_keys == 0
        assert overhead.total_bytes == 0

    def test_overhead_scales_with_replication(self):
        index = KeyCacheIndex()
        for cache in range(10):
            index.ingest_snapshot(f"c{cache}", ["hot"])
        index.ingest_snapshot("c0", ["hot", "cold"])
        assert index.key_overhead_bytes("hot") == 10 * KeyCacheIndex.BYTES_PER_CACHE_ENTRY
        assert index.key_overhead_bytes("cold") == KeyCacheIndex.BYTES_PER_CACHE_ENTRY
        overhead = index.overhead()
        assert overhead.p99_bytes >= overhead.median_bytes
        assert overhead.max_bytes == 10 * KeyCacheIndex.BYTES_PER_CACHE_ENTRY
