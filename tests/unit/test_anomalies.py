"""Unit tests for the Table 2 anomaly tracker."""


from repro.cloudburst import AnomalyTracker
from repro.lattices import LWWLattice, Timestamp


def lww(value, clock, node="writer"):
    return LWWLattice(Timestamp(clock, node), value)


class TestSingleKeyAnomalies:
    def test_no_anomaly_without_concurrent_writes(self):
        tracker = AnomalyTracker()
        v1 = lww("v1", 1.0)
        tracker.observe_write("e1", "cache-a", "k", v1)
        tracker.observe_read("e2", "cache-a", "k", v1)
        tracker.complete_execution("e1")
        tracker.complete_execution("e2")
        assert tracker.report.single_key == 0

    def test_concurrent_writes_flag_reads(self):
        tracker = AnomalyTracker()
        # Two executions write k without either having read the other's version.
        a = lww("a", 1.0, "writer-a")
        b = lww("b", 1.0, "writer-b")
        tracker.observe_write("e1", "cache-a", "k", a)
        tracker.observe_write("e2", "cache-b", "k", b)
        tracker.observe_read("e3", "cache-a", "k", b)
        tracker.complete_execution("e3")
        assert tracker.report.single_key == 1

    def test_causally_ordered_writes_do_not_flag(self):
        tracker = AnomalyTracker()
        first = lww("v1", 1.0, "writer-a")
        tracker.observe_write("e1", "cache-a", "k", first)
        # e2 reads v1 before writing, so its write causally follows v1.
        tracker.observe_read("e2", "cache-b", "k", first)
        second = lww("v2", 2.0, "writer-b")
        tracker.observe_write("e2", "cache-b", "k", second)
        tracker.observe_read("e3", "cache-a", "k", second)
        tracker.complete_execution("e3")
        assert tracker.report.single_key == 0


class TestRepeatableReadAnomalies:
    def test_same_key_two_versions_in_one_execution(self):
        tracker = AnomalyTracker()
        v1, v2 = lww("v1", 1.0), lww("v2", 2.0)
        tracker.observe_write("w1", "cache-a", "k", v1)
        tracker.observe_write("w2", "cache-a", "k", v2)
        tracker.observe_read("e1", "cache-a", "k", v1)
        tracker.observe_read("e1", "cache-b", "k", v2)
        tracker.complete_execution("e1")
        assert tracker.report.repeatable_read == 1

    def test_same_version_twice_is_fine(self):
        tracker = AnomalyTracker()
        v1 = lww("v1", 1.0)
        tracker.observe_write("w1", "cache-a", "k", v1)
        tracker.observe_read("e1", "cache-a", "k", v1)
        tracker.observe_read("e1", "cache-b", "k", v1)
        tracker.complete_execution("e1")
        assert tracker.report.repeatable_read == 0


class TestCausalCutAnomalies:
    def _write_dependency_chain(self, tracker):
        """writer reads l@old, then l@new is written, then k depends on l@new."""
        l_old = lww("l-old", 1.0, "w1")
        tracker.observe_write("setup-old", "cache-a", "l", l_old)
        l_new = lww("l-new", 2.0, "w1")
        # The new l causally follows the old one.
        tracker.observe_read("setup-new", "cache-a", "l", l_old)
        tracker.observe_write("setup-new", "cache-a", "l", l_new)
        # k is written by a session that read the *new* l.
        tracker.observe_read("setup-k", "cache-a", "l", l_new)
        k_v = lww("k-v", 3.0, "w2")
        tracker.observe_write("setup-k", "cache-a", "k", k_v)
        for execution in ("setup-old", "setup-new", "setup-k"):
            tracker.complete_execution(execution)
        return l_old, l_new, k_v

    def test_reading_k_with_stale_l_in_same_cache_is_multi_key_anomaly(self):
        tracker = AnomalyTracker()
        l_old, _, k_v = self._write_dependency_chain(tracker)
        baseline = tracker.report.multi_key_additional
        tracker.observe_read("e1", "cache-x", "k", k_v)
        tracker.observe_read("e1", "cache-x", "l", l_old)
        tracker.complete_execution("e1")
        assert tracker.report.multi_key_additional == baseline + 1

    def test_violation_across_caches_counts_as_distributed_session(self):
        tracker = AnomalyTracker()
        l_old, _, k_v = self._write_dependency_chain(tracker)
        dsc_before = tracker.report.distributed_session_additional
        mk_before = tracker.report.multi_key_additional
        tracker.observe_read("e1", "cache-x", "k", k_v)
        tracker.observe_read("e1", "cache-y", "l", l_old)
        tracker.complete_execution("e1")
        assert tracker.report.distributed_session_additional == dsc_before + 1
        assert tracker.report.multi_key_additional == mk_before

    def test_fresh_dependency_read_is_not_anomalous(self):
        tracker = AnomalyTracker()
        _, l_new, k_v = self._write_dependency_chain(tracker)
        tracker.observe_read("e1", "cache-x", "k", k_v)
        tracker.observe_read("e1", "cache-x", "l", l_new)
        tracker.complete_execution("e1")
        assert tracker.report.multi_key_additional == 0
        assert tracker.report.distributed_session_additional == 0


class TestReport:
    def test_cumulative_counts_accrue_left_to_right(self):
        tracker = AnomalyTracker()
        tracker.report.single_key = 10
        tracker.report.multi_key_additional = 3
        tracker.report.distributed_session_additional = 2
        row = tracker.report.as_row()
        assert row["LWW"] == 0
        assert row["SK"] == 10
        assert row["MK"] == 13
        assert row["DSC"] == 15

    def test_execution_counter(self):
        tracker = AnomalyTracker()
        tracker.complete_execution("nothing-read")
        assert tracker.report.executions == 1
