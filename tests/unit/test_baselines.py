"""Unit tests for the simulated baseline systems."""

import pytest

from repro.baselines import (
    DaskCluster,
    LambdaComposition,
    NativePython,
    SageMaker,
    SandPlatform,
    SimulatedDynamoDB,
    SimulatedLambda,
    SimulatedRedis,
    SimulatedS3,
    StepFunctions,
)
from repro.errors import KeyNotFoundError
from repro.sim import LatencyModel, RandomSource, RequestContext


@pytest.fixture
def model():
    return LatencyModel(jitter_enabled=False)


class TestSimulatedStorage:
    def test_put_get_roundtrip_with_charges(self, model):
        s3 = SimulatedS3(model)
        ctx = RequestContext()
        s3.put("k", b"x" * 1000, ctx)
        assert s3.get("k", ctx) == b"x" * 1000
        assert ctx.count("s3", "put") == 1
        assert ctx.count("s3", "get") == 1

    def test_missing_key_raises(self, model):
        with pytest.raises(KeyNotFoundError):
            SimulatedS3(model).get("ghost")

    def test_dynamodb_enforces_item_limit(self, model):
        dynamo = SimulatedDynamoDB(model)
        with pytest.raises(ValueError):
            dynamo.put("big", b"x" * (500 * 1024))
        dynamo.put("small", b"x" * 1024)
        assert dynamo.contains("small")

    def test_s3_slower_than_dynamo_slower_than_redis(self, model):
        payload = b"y" * 10_000
        latencies = {}
        for name, service in (("s3", SimulatedS3(model)),
                              ("dynamo", SimulatedDynamoDB(model)),
                              ("redis", SimulatedRedis(model))):
            ctx = RequestContext()
            service.put("k", payload, ctx)
            service.get("k", ctx)
            latencies[name] = ctx.clock.now_ms
        assert latencies["redis"] < latencies["dynamo"] < latencies["s3"]

    def test_redis_write_contention_adds_queue_delay(self, model):
        redis = SimulatedRedis(model)
        free = RequestContext()
        redis.put("a", 1, free, contention=0)
        queued = RequestContext()
        redis.put("b", 1, queued, contention=5)
        assert queued.clock.now_ms > free.clock.now_ms

    def test_redis_mget_overlaps_per_key_charges(self, model):
        redis = SimulatedRedis(model)
        for index in range(5):
            redis.put(f"k{index}", index)
        ctx = RequestContext()
        values = redis.mget([f"k{index}" for index in range(5)], ctx)
        assert values == [0, 1, 2, 3, 4]
        # Pipelined charge model: every key pays its own service charge on a
        # forked branch, the caller pays per-key dispatch and advances to the
        # slowest branch (max, not sum).
        assert ctx.count("redis", "get") == 5
        assert ctx.count("redis", "mget_dispatch") == 4
        get_latencies = [charge.latency_ms for charge in ctx.charges
                         if charge.operation == "get"]
        serial = sum(charge.latency_ms for charge in ctx.charges
                     if charge.operation in ("mget_dispatch", "ingress"))
        assert ctx.clock.now_ms >= max(get_latencies)
        assert ctx.clock.now_ms <= max(get_latencies) + serial + 1e-9
        assert ctx.clock.now_ms < sum(get_latencies)

    def test_redis_mget_batch_of_one_matches_get(self, model):
        charges = []
        for use_mget in (False, True):
            redis = SimulatedRedis(model)
            redis.put("k", "v")
            ctx = RequestContext()
            if use_mget:
                assert redis.mget(["k"], ctx) == ["v"]
            else:
                assert redis.get("k", ctx) == "v"
            charges.append([(c.service, c.operation, c.latency_ms)
                            for c in ctx.charges])
        assert charges[0] == charges[1]

    def test_delete_and_keys(self, model):
        redis = SimulatedRedis(model)
        redis.put("a", 1)
        assert redis.keys() == ["a"]
        assert redis.delete("a")
        assert not redis.delete("a")


class TestSimulatedLambda:
    def test_invoke_runs_function_and_charges_overhead(self, model):
        platform = SimulatedLambda(model)
        platform.register(lambda x: x + 1, "inc")
        ctx = RequestContext()
        assert platform.invoke("inc", (1,), ctx) == 2
        assert ctx.count("lambda", "invoke") == 1
        assert platform.invocation_count == 1

    def test_cold_starts_add_latency(self, model):
        warm = SimulatedLambda(model, cold_start_probability=0.0)
        cold = SimulatedLambda(model, rng=RandomSource(1), cold_start_probability=1.0)
        for platform in (warm, cold):
            platform.register(lambda: None, "noop")
        warm_ctx, cold_ctx = RequestContext(), RequestContext()
        warm.invoke("noop", (), warm_ctx)
        cold.invoke("noop", (), cold_ctx)
        assert cold_ctx.clock.now_ms > warm_ctx.clock.now_ms + 100

    def test_direct_composition_chains_results(self, model):
        platform = SimulatedLambda(model)
        platform.register(lambda x: x + 1, "inc")
        platform.register(lambda x: x * x, "square")
        composition = LambdaComposition(platform)
        ctx = RequestContext()
        assert composition.run_direct(["inc", "square"], 4, ctx) == 25

    def test_storage_composition_persists_result(self, model):
        platform = SimulatedLambda(model)
        platform.register(lambda x: x + 1, "inc")
        s3 = SimulatedS3(model)
        composition = LambdaComposition(platform, s3)
        direct_ctx, s3_ctx = RequestContext(), RequestContext()
        LambdaComposition(platform).run_direct(["inc"], 1, direct_ctx)
        assert composition.run_through_storage(["inc"], 1, s3_ctx) == 2
        assert s3.get_count == 0 and s3.put_count == 1
        assert s3_ctx.clock.now_ms > direct_ctx.clock.now_ms

    def test_storage_composition_requires_storage(self, model):
        platform = SimulatedLambda(model)
        platform.register(lambda x: x, "f")
        with pytest.raises(ValueError):
            LambdaComposition(platform).run_through_storage(["f"], 1)


class TestStepFunctionsAndOtherPlatforms:
    def test_step_functions_much_slower_than_direct_lambda(self, model):
        platform = SimulatedLambda(model)
        platform.register(lambda x: x + 1, "inc")
        platform.register(lambda x: x * x, "square")
        sfn_ctx, direct_ctx = RequestContext(), RequestContext()
        StepFunctions(platform, model).execute(["inc", "square"], 3, sfn_ctx)
        LambdaComposition(platform).run_direct(["inc", "square"], 3, direct_ctx)
        assert sfn_ctx.clock.now_ms > 5 * direct_ctx.clock.now_ms

    def test_dask_low_overhead_pipeline(self, model):
        dask = DaskCluster(model)
        dask.register(lambda x: x + 1, "inc")
        dask.register(lambda x: x * 2, "double")
        ctx = RequestContext()
        assert dask.run_pipeline(["inc", "double"], 1, ctx) == 4
        assert ctx.clock.now_ms < 10.0

    def test_sand_slower_than_dask_faster_than_stepfunctions(self, model):
        functions = [("inc", lambda x: x + 1), ("square", lambda x: x * x)]
        sand = SandPlatform(model, rng=RandomSource(3))
        dask = DaskCluster(model)
        lam = SimulatedLambda(model)
        for name, func in functions:
            sand.register(func, name)
            dask.register(func, name)
            lam.register(func, name)
        sand_ctx, dask_ctx, sfn_ctx = RequestContext(), RequestContext(), RequestContext()
        sand.run_pipeline(["inc", "square"], 2, sand_ctx)
        dask.run_pipeline(["inc", "square"], 2, dask_ctx)
        StepFunctions(lam, model).execute(["inc", "square"], 2, sfn_ctx)
        assert dask_ctx.clock.now_ms < sand_ctx.clock.now_ms < sfn_ctx.clock.now_ms

    def test_sagemaker_and_python_pipelines_compute_same_result(self, model):
        stages = [("a", lambda x: x + 1), ("b", lambda x: x * 3)]
        sagemaker, python = SageMaker(model), NativePython(model)
        for name, func in stages:
            sagemaker.register(func, name)
            python.register(func, name)
        sm_ctx, py_ctx = RequestContext(), RequestContext()
        assert sagemaker.invoke_endpoint(["a", "b"], 1, sm_ctx) == \
               python.run_pipeline(["a", "b"], 1, py_ctx) == 6
        assert sm_ctx.clock.now_ms > py_ctx.clock.now_ms
