"""Unit tests for the ``benchmarks/run_all.py`` regression gate.

CI runs ``run_all.py --quick`` on every push and fails the build when the
snapshot's invariants break.  These tests pin the gate itself: the ordering
checks flag broken payloads, and ``main`` exits nonzero when they do —
without re-running the (seconds-long) benchmark harnesses.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "bench_run_all", REPO_ROOT / "benchmarks" / "run_all.py")
run_all = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(run_all)


def _stats(median_ms: float) -> dict:
    return {"count": 8, "median_ms": median_ms, "p99_ms": median_ms * 2}


def good_figure5() -> dict:
    return {
        "driver": "engine",
        "sizes": {
            "8MB": {
                "Cloudburst (Hot)": _stats(2.0),
                "Cloudburst (Cold)": _stats(60.0),
                "Lambda (Redis)": _stats(120.0),
                "Lambda (S3)": _stats(400.0),
            },
            "80MB": {
                "Cloudburst (Hot)": _stats(50.0),
                "Cloudburst (Cold)": _stats(500.0),
                "Lambda (Redis)": _stats(1_500.0),
                "Lambda (S3)": _stats(1_200.0),
            },
        },
        "wall_seconds": 1.0,
    }


def good_figure6() -> dict:
    return {
        "driver": "engine",
        "systems": {
            "Cloudburst (gossip)": _stats(220.0),
            "Cloudburst (gather)": _stats(10.0),
            "Lambda+Redis (gather)": _stats(240.0),
            "Lambda+Dynamo (gather)": _stats(320.0),
            "Lambda+S3 (gather)": _stats(640.0),
        },
        "wall_seconds": 1.0,
    }


def good_controlplane() -> dict:
    return {
        "publish_interval_ms": 1_250.0,
        "policy_interval_ms": 2_500.0,
        "publish_ticks": 12,
        "policy_ticks": 6,
        "scale_up_events": 1,
        "threads_drained": 7,
        "migrations": 1,
        "calls_routed_to_drained": 0,
        "baseline_threads": 6,
        "peak_threads": 9,
        "final_threads": 2,
        "min_threads": 2,
    }


def good_figure7() -> dict:
    return {
        "requests_per_s": 80.0,
        "peak_requests_per_s": 150.0,
        "completed_requests": 100,
        "capacity_timeline": [[0.0, 6], [7_500.0, 9], [12_500.0, 2]],
        "initial_threads": 6,
        "clients": 8,
        "latency": _stats(60.0),
        "storage": {"nodes": 4},
        "storage_node_timeline": [],
        "controlplane": good_controlplane(),
        "wall_seconds": 1.0,
    }


def good_scaling() -> dict:
    # A healthy paper-shaped sweep: 160 threads beats 10 by 15x, clearing
    # both the fig10 (8x) and fig12 (4x) gate ratios.
    return {
        "requests_per_point": 2_000,
        "points": [
            {"threads": 10, "clients": 10, "requests_per_s": 100.0,
             "median_ms": 5.0, "p99_ms": 10.0},
            {"threads": 160, "clients": 160, "requests_per_s": 1_500.0,
             "median_ms": 5.0, "p99_ms": 10.0},
        ],
        "wall_seconds": 1.0,
    }


def good_engine_throughput() -> dict:
    return {
        "events_per_sec": 350_000.0,
        "floor_events_per_sec": 100_000.0,
        "speedup_vs_pre_pr": 2.5,
        "sim_ms_per_wall_ms": 8.0,
    }


def _fault_entry(fault: str, injected: int = 3) -> dict:
    return {
        "fault": fault,
        "requests": 200,
        "completed": 200,
        "failed": 0,
        "anomalies": {"LWW": 0, "SK": 120, "MK": 120, "DSC": 121, "DSRR": 0},
        "violations": [],
        "abandoned_sessions": 0,
        "calls_routed_to_dead": 0,
        "recovered_sessions": 4 if fault == "scheduler_crash" else 0,
        "faults": {"injected": injected, "recovered": injected,
                   "max_recovery_ms": 10.0, "recovery_bound_ms": 15.0},
    }


def good_fault_recovery() -> dict:
    classes = ("executor_kill", "storage_drop", "gossip_partition",
               "scheduler_crash")
    return {
        "seed": 14,
        "fault_classes": list(classes),
        "classes": {fault: _fault_entry(fault) for fault in classes},
        "determinism": {"fault": "executor_kill", "timeline_match": True,
                        "anomalies_match": True},
        "wall_seconds": 1.0,
    }


def good_observability() -> dict:
    return {
        "source": "figure7",
        "sample_rate": 0.05,
        "traces": 600,
        "spans": 1_000,
        "orphan_spans": 0,
        "tiers": ["anna", "cache", "client", "executor", "scheduler"],
        "span_dump": "BENCH_spans_fig7.json",
        "chrome_trace": "BENCH_trace_fig7.json",
    }


def good_payload() -> dict:
    return {
        "figure5_locality": good_figure5(),
        "figure6_aggregation": good_figure6(),
        "figure7_autoscaling": good_figure7(),
        "figure10_prediction_scaling": good_scaling(),
        "figure12_retwis_scaling": good_scaling(),
        "engine_throughput": good_engine_throughput(),
        "table2_anomalies": {"invariant_violations": []},
        "fault_recovery": good_fault_recovery(),
        "observability": good_observability(),
    }


class TestOrderingChecks:
    def test_good_payload_has_no_errors(self):
        assert run_all.collect_gate_errors(good_payload()) == []

    def test_fig5_hot_slower_than_cold_is_flagged(self):
        fig5 = good_figure5()
        fig5["sizes"]["8MB"]["Cloudburst (Hot)"] = _stats(80.0)
        errors = run_all.figure5_ordering_errors(fig5)
        assert any("Cloudburst (Hot) < Cloudburst (Cold)" in e for e in errors)

    def test_fig5_speedup_floor_is_flagged(self):
        fig5 = good_figure5()
        # Ordering intact, but the hot cache advantage collapsed below 10x.
        fig5["sizes"]["8MB"]["Cloudburst (Hot)"] = _stats(20.0)
        errors = run_all.figure5_ordering_errors(fig5)
        assert any(">10x" in e for e in errors)

    def test_fig5_s3_crossover_is_flagged(self):
        fig5 = good_figure5()
        fig5["sizes"]["80MB"]["Lambda (S3)"] = _stats(2_000.0)
        errors = run_all.figure5_ordering_errors(fig5)
        assert any("crossover" in e for e in errors)

    def test_fig6_gather_slower_than_gossip_is_flagged(self):
        fig6 = good_figure6()
        fig6["systems"]["Cloudburst (gather)"] = _stats(300.0)
        errors = run_all.figure6_ordering_errors(fig6)
        assert errors

    def test_consistency_violations_pass_through(self):
        payload = good_payload()
        payload["table2_anomalies"]["invariant_violations"] = ["LWW != 0"]
        assert "LWW != 0" in run_all.collect_gate_errors(payload)


class TestScalingAndEngineGates:
    def test_collapsed_scaling_curve_is_flagged(self):
        fig = good_scaling()
        fig["points"][1]["requests_per_s"] = 300.0  # only 3x the 10-thread point
        errors = run_all.scaling_curve_errors("fig12", fig, min_ratio=4.0)
        assert any("scaling collapsed" in e for e in errors)

    def test_missing_endpoint_is_flagged(self):
        fig = good_scaling()
        fig["points"] = fig["points"][:1]  # 160-thread point gone
        errors = run_all.scaling_curve_errors("fig10", fig, min_ratio=8.0)
        assert any("missing" in e for e in errors)

    def test_ratio_is_strict_per_figure(self):
        # 5x clears fig12's 4x bar but not fig10's 8x bar.
        fig = good_scaling()
        fig["points"][1]["requests_per_s"] = 500.0
        assert run_all.scaling_curve_errors("fig12", fig, min_ratio=4.0) == []
        assert run_all.scaling_curve_errors("fig10", fig, min_ratio=8.0)

    def test_engine_below_floor_is_flagged(self):
        payload = good_payload()
        payload["engine_throughput"]["events_per_sec"] = 50_000.0
        errors = run_all.collect_gate_errors(payload)
        assert any("fell below the" in e for e in errors)


class TestFaultRecoveryGate:
    def test_good_section_has_no_errors(self):
        assert run_all.fault_recovery_errors(good_fault_recovery()) == []

    def test_missing_section_is_flagged(self):
        assert run_all.fault_recovery_errors({}) == [
            "fault_recovery: section missing"]

    def test_missing_class_is_flagged(self):
        section = good_fault_recovery()
        del section["classes"]["storage_drop"]
        errors = run_all.fault_recovery_errors(section)
        assert "fault_recovery[storage_drop]: class was not run" in errors

    def test_abandoned_sessions_are_flagged(self):
        section = good_fault_recovery()
        section["classes"]["scheduler_crash"]["abandoned_sessions"] = 2
        errors = run_all.fault_recovery_errors(section)
        assert any("abandoned" in e for e in errors)

    def test_calls_to_dead_threads_are_flagged(self):
        section = good_fault_recovery()
        section["classes"]["executor_kill"]["calls_routed_to_dead"] = 1
        errors = run_all.fault_recovery_errors(section)
        assert any("dead or drained" in e for e in errors)

    def test_unrecovered_fault_is_flagged(self):
        section = good_fault_recovery()
        section["classes"]["gossip_partition"]["faults"]["recovered"] = 2
        errors = run_all.fault_recovery_errors(section)
        assert any("injected but" in e for e in errors)

    def test_recovery_over_bound_is_flagged(self):
        section = good_fault_recovery()
        section["classes"]["executor_kill"]["faults"]["max_recovery_ms"] = 99.0
        errors = run_all.fault_recovery_errors(section)
        assert any("over the" in e for e in errors)

    def test_vacuous_run_is_flagged(self):
        # A schedule that never fires must fail the gate, not silently pass.
        section = good_fault_recovery()
        section["classes"]["executor_kill"]["faults"].update(
            injected=0, recovered=0)
        errors = run_all.fault_recovery_errors(section)
        assert any("never exercised" in e for e in errors)

    def test_crash_without_journal_recovery_is_flagged(self):
        section = good_fault_recovery()
        section["classes"]["scheduler_crash"]["recovered_sessions"] = 0
        errors = run_all.fault_recovery_errors(section)
        assert any("recovered from the journal" in e for e in errors)

    def test_nondeterministic_timeline_is_flagged(self):
        section = good_fault_recovery()
        section["determinism"]["timeline_match"] = False
        errors = run_all.fault_recovery_errors(section)
        assert any("seed-deterministic" in e for e in errors)

    def test_anomaly_violations_pass_through(self):
        section = good_fault_recovery()
        section["classes"]["executor_kill"]["violations"] = ["LWW != 0"]
        errors = run_all.fault_recovery_errors(section)
        assert "fault_recovery[executor_kill]: LWW != 0" in errors


class TestObservabilityGate:
    def test_good_section_has_no_errors(self):
        assert run_all.observability_errors(good_observability()) == []

    def test_traceless_run_is_flagged(self):
        section = good_observability()
        section["traces"] = 0
        errors = run_all.observability_errors(section)
        assert any("no traces" in e for e in errors)

    def test_orphan_spans_are_flagged(self):
        section = good_observability()
        section["orphan_spans"] = 2
        errors = run_all.observability_errors(section)
        assert any("orphan" in e for e in errors)

    def test_missing_tier_is_flagged(self):
        section = good_observability()
        section["tiers"] = ["client", "scheduler", "executor"]
        errors = run_all.observability_errors(section)
        assert any("anna" in e and "cache" in e for e in errors)


class TestControlPlaneChecks:
    def test_good_controlplane_has_no_errors(self):
        assert run_all.figure7_controlplane_errors(good_figure7()) == []

    def test_missing_section_is_flagged(self):
        fig7 = good_figure7()
        fig7["controlplane"] = None
        errors = run_all.figure7_controlplane_errors(fig7)
        assert any("missing" in e for e in errors)

    def test_no_scale_up_is_flagged(self):
        fig7 = good_figure7()
        fig7["controlplane"]["peak_threads"] = 6
        errors = run_all.figure7_controlplane_errors(fig7)
        assert any("never scaled up" in e for e in errors)

    def test_no_drain_back_to_baseline_is_flagged(self):
        fig7 = good_figure7()
        fig7["controlplane"]["final_threads"] = 9
        errors = run_all.figure7_controlplane_errors(fig7)
        assert any("did not return to baseline" in e for e in errors)

    def test_missing_pin_migration_is_flagged(self):
        fig7 = good_figure7()
        fig7["controlplane"]["migrations"] = 0
        errors = run_all.figure7_controlplane_errors(fig7)
        assert any("pin migration" in e for e in errors)

    def test_calls_to_drained_threads_are_flagged(self):
        fig7 = good_figure7()
        fig7["controlplane"]["calls_routed_to_drained"] = 3
        errors = run_all.figure7_controlplane_errors(fig7)
        assert any("drained executor threads" in e for e in errors)


class TestMainExitCode:
    def _canned_sections(self, monkeypatch, fig5: dict, violations=()):
        table2 = {"invariant_violations": list(violations),
                  "anomalies": {"LWW": 0}, "executions": 800,
                  "clients": 8, "propagation_interval_ms": 50.0,
                  "multi_key_additional": 0,
                  "distributed_session_additional": 0, "wall_seconds": 1.0}
        fig7 = good_figure7()
        scaling = good_scaling()
        fig8 = {"levels": {"LWW": _stats(2.0)}, "metadata_overhead_bytes": {},
                "clients": 4, "propagation_interval_ms": 50.0,
                "wall_seconds": 1.0}
        monkeypatch.setattr(run_all, "run_engine_micro",
                            lambda *a, **k: good_engine_throughput())
        monkeypatch.setattr(run_all, "snapshot_figure5", lambda *a, **k: fig5)
        monkeypatch.setattr(run_all, "snapshot_figure6",
                            lambda *a, **k: good_figure6())
        monkeypatch.setattr(run_all, "snapshot_figure7", lambda *a, **k: fig7)
        monkeypatch.setattr(run_all, "snapshot_scaling", lambda *a, **k: scaling)
        monkeypatch.setattr(run_all, "snapshot_figure8", lambda *a, **k: fig8)
        monkeypatch.setattr(run_all, "snapshot_table2", lambda *a, **k: table2)
        monkeypatch.setattr(run_all, "snapshot_fault_recovery",
                            lambda *a, **k: good_fault_recovery())
        # The canned figure 7 never drives the tracer, so the real
        # snapshot_observability would (rightly) report a traceless run.
        monkeypatch.setattr(run_all, "snapshot_observability",
                            lambda *a, **k: good_observability())

    def test_quick_run_exits_zero_when_gates_hold(self, monkeypatch, tmp_path):
        self._canned_sections(monkeypatch, good_figure5())
        output = tmp_path / "bench.json"
        assert run_all.main(["--quick", "--no-ledger",
                             "--output", str(output)]) == 0
        payload = json.loads(output.read_text())
        assert payload["bench_gate_ok"] is True
        assert payload["scale"] == "quick"

    def test_quick_run_exits_nonzero_on_ordering_breakage(self, monkeypatch,
                                                          tmp_path):
        broken = good_figure5()
        broken["sizes"]["8MB"]["Cloudburst (Hot)"] = _stats(500.0)
        self._canned_sections(monkeypatch, broken)
        output = tmp_path / "bench.json"
        assert run_all.main(["--quick", "--no-ledger",
                             "--output", str(output)]) == 1
        # The snapshot is still written (CI uploads it as an artifact even
        # when the gate fails), with the failure recorded in the payload.
        payload = json.loads(output.read_text())
        assert payload["bench_gate_ok"] is False

    def test_quick_run_exits_nonzero_on_consistency_breakage(self, monkeypatch,
                                                             tmp_path):
        self._canned_sections(monkeypatch, good_figure5(),
                              violations=["SK > MK cumulative"])
        output = tmp_path / "bench.json"
        assert run_all.main(["--quick", "--no-ledger",
                             "--output", str(output)]) == 1


class TestMainLedgerGate:
    """The ledger trend gate as wired into ``run_all.main``."""

    _canned_sections = TestMainExitCode._canned_sections

    def test_fresh_ledger_records_run_and_passes(self, monkeypatch, tmp_path):
        self._canned_sections(monkeypatch, good_figure5())
        output = tmp_path / "bench.json"
        ledger = tmp_path / "ledger.sqlite"
        assert run_all.main(["--quick", "--output", str(output),
                             "--ledger", str(ledger),
                             "--ledger-seed", str(tmp_path / "missing.json")]) == 0
        payload = json.loads(output.read_text())
        assert payload["ledger"]["ledger_ok"] is True
        assert payload["ledger"]["trend_gate_ok"] is True
        assert payload["ledger"]["runs_recorded"] == 1
        assert ledger.exists()

    def test_default_ledger_lands_next_to_output(self, monkeypatch, tmp_path):
        self._canned_sections(monkeypatch, good_figure5())
        output = tmp_path / "bench.json"
        assert run_all.main(["--quick", "--output", str(output),
                             "--ledger-seed",
                             str(tmp_path / "missing.json")]) == 0
        assert (tmp_path / "bench_ledger.sqlite").exists()

    def test_trend_regression_fails_the_gate(self, monkeypatch, tmp_path):
        # Build history at a high throughput, then regress fig10/fig12 far
        # below 85% of the recorded median: main must exit nonzero.
        self._canned_sections(monkeypatch, good_figure5())
        output = tmp_path / "bench.json"
        ledger = tmp_path / "ledger.sqlite"
        seed = str(tmp_path / "missing.json")
        common = ["--quick", "--output", str(output), "--ledger", str(ledger),
                  "--ledger-seed", seed]
        assert run_all.main(common) == 0
        assert run_all.main(common) == 0

        regressed = good_scaling()
        regressed["points"][1]["requests_per_s"] = 900.0  # 9x: fixed gates hold
        monkeypatch.setattr(run_all, "snapshot_scaling",
                            lambda *a, **k: regressed)
        assert run_all.main(common) == 1
        payload = json.loads(output.read_text())
        assert payload["ledger"]["trend_gate_ok"] is False
        assert any("below the median" in e for e in payload["gate_errors"])
