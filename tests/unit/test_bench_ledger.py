"""Unit tests for the historical bench ledger and its trend gate.

Pins the ledger's three contracts: runs append atomically and are queryable;
trend checks are one-sided against a windowed median with seeded/wallclock
exclusions; and a corrupt or missing ledger degrades to fixed-threshold
gating with a warning rather than failing the build.
"""

import json
import sqlite3

import pytest

from repro.bench.ledger import (
    TREND_TOLERANCE,
    BenchLedger,
    apply_ledger,
    extract_samples,
    format_report,
    main,
    trend_errors,
)


def make_payload(engine=500_000.0, fig10=1_500.0, fig12=8_000.0, fig7=110.0,
                 scale="quick", seed=0):
    return {
        "schema": 7,
        "scale": scale,
        "seed": seed,
        "engine_throughput": {"events_per_sec": engine},
        "figure10_prediction_scaling": {
            "points": [
                {"threads": 10, "requests_per_s": fig10 / 10,
                 "median_ms": 5.0},
                {"threads": 160, "requests_per_s": fig10, "median_ms": 5.0},
            ],
        },
        "figure12_retwis_scaling": {
            "points": [{"threads": 160, "requests_per_s": fig12}],
        },
        "figure7_autoscaling": {"requests_per_s": fig7},
        "bench_gate_ok": True,
    }


@pytest.fixture
def ledger_path(tmp_path):
    return tmp_path / "ledger.sqlite"


class TestExtractSamples:
    def test_flattens_nested_dicts_and_booleans(self):
        samples = extract_samples(make_payload())
        assert samples["engine_throughput/events_per_sec"] == 500_000.0
        assert samples["figure7_autoscaling/requests_per_s"] == 110.0
        assert samples["bench_gate_ok"] == 1.0
        assert samples["schema"] == 7.0

    def test_points_lists_key_by_thread_count(self):
        samples = extract_samples(make_payload(fig10=1_234.0))
        assert samples[
            "figure10_prediction_scaling/threads_160/requests_per_s"] == 1_234.0
        assert samples[
            "figure10_prediction_scaling/threads_10/median_ms"] == 5.0

    def test_strings_and_plain_lists_are_skipped(self):
        samples = extract_samples(
            {"a": {"name": "x", "timeline": [1, 2, 3], "value": 4}})
        assert samples == {"a/value": 4.0}


class TestBenchLedger:
    def test_append_and_count(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        run_id = ledger.append_run(make_payload(), gate_errors=["boom"])
        assert run_id == 1
        assert ledger.run_count() == 1
        conn = sqlite3.connect(str(ledger_path))
        assert conn.execute(
            "SELECT gate_ok FROM runs WHERE run_id = 1").fetchone() == (0,)
        assert conn.execute(
            "SELECT message FROM gate_outcomes").fetchone() == ("boom",)
        section = conn.execute(
            "SELECT payload FROM sections WHERE section = "
            "'engine_throughput'").fetchone()
        assert json.loads(section[0]) == {"events_per_sec": 500_000.0}
        conn.close()
        ledger.close()

    def test_history_is_newest_first_and_windowed(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        for engine in (100.0, 200.0, 300.0):
            ledger.append_run(make_payload(engine=engine))
        values = ledger.history("engine_throughput/events_per_sec", limit=2)
        assert values == [300.0, 200.0]
        ledger.close()

    def test_history_scale_filter(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        ledger.append_run(make_payload(fig7=50.0, scale="quick"))
        ledger.append_run(make_payload(fig7=500.0, scale="full"))
        assert ledger.history("figure7_autoscaling/requests_per_s",
                              scale="quick") == [50.0]
        ledger.close()

    def test_history_can_exclude_seeded_rows(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        ledger.append_run(make_payload(engine=999.0), seeded=True)
        ledger.append_run(make_payload(engine=100.0))
        metric = "engine_throughput/events_per_sec"
        assert ledger.history(metric) == [100.0, 999.0]
        assert ledger.history(metric, include_seeded=False) == [100.0]
        ledger.close()

    def test_seed_from_snapshot(self, ledger_path, tmp_path):
        snapshot = tmp_path / "snap.json"
        snapshot.write_text(json.dumps(make_payload(scale="reduced")))
        ledger = BenchLedger(ledger_path)
        assert ledger.seed_from_snapshot(snapshot) == 1
        conn = sqlite3.connect(str(ledger_path))
        assert conn.execute("SELECT seeded FROM runs").fetchone() == (1,)
        conn.close()
        ledger.close()

    def test_seed_from_missing_or_garbage_snapshot_is_none(self, ledger_path,
                                                           tmp_path):
        ledger = BenchLedger(ledger_path)
        assert ledger.seed_from_snapshot(tmp_path / "nope.json") is None
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert ledger.seed_from_snapshot(garbage) is None
        assert ledger.run_count() == 0
        ledger.close()


class TestTrendErrors:
    def test_empty_history_passes(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        errors, checks = trend_errors(make_payload(), ledger)
        assert errors == []
        assert checks["engine_throughput/events_per_sec"]["median"] is None
        ledger.close()

    def test_within_tolerance_passes(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        for _ in range(3):
            ledger.append_run(make_payload(engine=1_000.0))
        errors, checks = trend_errors(make_payload(engine=900.0), ledger)
        assert errors == []
        assert checks["engine_throughput/events_per_sec"]["ok"] is True
        ledger.close()

    def test_regression_below_tolerance_fails(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        for _ in range(3):
            ledger.append_run(make_payload(engine=1_000.0))
        floor = (1.0 - TREND_TOLERANCE) * 1_000.0
        errors, checks = trend_errors(make_payload(engine=floor - 1), ledger)
        assert len(errors) == 1
        assert "below the median" in errors[0]
        assert checks["engine_throughput/events_per_sec"]["ok"] is False
        ledger.close()

    def test_improvement_never_fails(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        ledger.append_run(make_payload(engine=1_000.0))
        errors, _ = trend_errors(make_payload(engine=50_000.0), ledger)
        assert errors == []
        ledger.close()

    def test_wallclock_history_excludes_seeded_rows(self, ledger_path):
        # A seeded snapshot recorded on faster hardware must not fail CI.
        ledger = BenchLedger(ledger_path)
        ledger.append_run(make_payload(engine=1_000_000.0), seeded=True)
        errors, checks = trend_errors(make_payload(engine=100.0), ledger)
        assert errors == []
        assert checks["engine_throughput/events_per_sec"]["window"] == 0
        ledger.close()

    def test_deterministic_history_includes_seeded_rows(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        ledger.append_run(make_payload(fig10=10_000.0), seeded=True)
        errors, _ = trend_errors(make_payload(fig10=100.0), ledger)
        assert any("figure10" in e for e in errors)
        ledger.close()

    def test_scale_bound_metric_compares_like_to_like(self, ledger_path):
        # fig7's rate at "full" scale must not gate a "quick" run.
        ledger = BenchLedger(ledger_path)
        ledger.append_run(make_payload(fig7=10_000.0, scale="full"))
        errors, checks = trend_errors(make_payload(fig7=50.0, scale="quick"),
                                      ledger)
        assert errors == []
        assert checks["figure7_autoscaling/requests_per_s"]["window"] == 0
        ledger.close()


class TestApplyLedger:
    def test_first_run_seeds_then_records(self, ledger_path, tmp_path):
        snapshot = tmp_path / "snap.json"
        snapshot.write_text(json.dumps(make_payload()))
        section, errors = apply_ledger(make_payload(), [], ledger_path,
                                       seed_snapshot=snapshot)
        assert errors == []
        assert section["ledger_ok"] is True
        assert section["seeded_from"] == str(snapshot)
        assert section["runs_recorded"] == 2  # seed row + this run

    def test_trend_window_excludes_the_judged_run(self, ledger_path):
        # The first real run on an unseeded ledger has no history: it must
        # not be compared against itself.
        section, errors = apply_ledger(make_payload(), [], ledger_path)
        assert errors == []
        assert section["trend"][
            "engine_throughput/events_per_sec"]["window"] == 0

    def test_corrupt_ledger_degrades_with_warning(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.sqlite"
        corrupt.write_bytes(b"definitely not a sqlite database " * 8)
        section, errors = apply_ledger(make_payload(), ["fixed-error"], corrupt)
        assert errors == []
        assert section["ledger_ok"] is False
        assert "fixed thresholds still apply" in section["warning"]
        assert "WARNING" in capsys.readouterr().err

    def test_unwritable_path_degrades_with_warning(self, tmp_path, capsys):
        missing_dir = tmp_path / "no" / "such" / "dir" / "ledger.sqlite"
        section, errors = apply_ledger(make_payload(), [], missing_dir)
        assert errors == []
        assert section["ledger_ok"] is False
        assert "WARNING" in capsys.readouterr().err

    def test_fixed_errors_are_recorded_alongside_trend_errors(self,
                                                              ledger_path):
        apply_ledger(make_payload(fig10=10_000.0), [], ledger_path)
        section, errors = apply_ledger(make_payload(fig10=100.0),
                                       ["fixed boom"], ledger_path)
        assert errors  # the fig10 trend regression
        conn = sqlite3.connect(str(ledger_path))
        messages = [row[0] for row in
                    conn.execute("SELECT message FROM gate_outcomes")]
        conn.close()
        assert "fixed boom" in messages
        assert any("below the median" in m for m in messages)


class TestCli:
    def test_report_prints_trend_table(self, ledger_path, capsys):
        ledger = BenchLedger(ledger_path)
        ledger.append_run(make_payload())
        ledger.close()
        assert main(["--report", "--ledger", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "engine_throughput/events_per_sec" in out
        assert "1 run(s) recorded" in out

    def test_missing_ledger_exits_zero(self, tmp_path, capsys):
        assert main(["--report",
                     "--ledger", str(tmp_path / "nope.sqlite")]) == 0
        assert "does not exist" in capsys.readouterr().err

    def test_corrupt_ledger_exits_zero(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.sqlite"
        corrupt.write_bytes(b"junk junk junk junk junk junk junk " * 4)
        assert main(["--report", "--ledger", str(corrupt)]) == 0
        assert "WARNING" in capsys.readouterr().err

    def test_format_report_handles_empty_ledger(self, ledger_path):
        ledger = BenchLedger(ledger_path)
        report = format_report(ledger)
        assert "0 run(s) recorded" in report
        ledger.close()
