"""Unit tests for the executor-colocated cache."""

import pytest

from repro.anna import AnnaCluster
from repro.cloudburst import ExecutorCache
from repro.errors import ConsistencyError, KeyNotFoundError
from repro.lattices import CausalLattice, LWWLattice, Timestamp, VectorClock
from repro.sim import LatencyModel, RequestContext


@pytest.fixture
def anna():
    return AnnaCluster(node_count=2, replication_factor=1,
                       latency_model=LatencyModel(jitter_enabled=False))


@pytest.fixture
def peers():
    return {}


@pytest.fixture
def cache(anna, peers):
    return ExecutorCache("cache-a", anna, peer_registry=peers)


def lww(value, clock=1.0, node="n"):
    return LWWLattice(Timestamp(clock, node), value)


class TestBasicDataPath:
    def test_get_missing_raises(self, cache):
        with pytest.raises(KeyNotFoundError):
            cache.get("ghost")

    def test_get_or_fetch_miss_goes_to_anna(self, cache, anna):
        anna.put("k", lww("v"))
        ctx = RequestContext()
        value = cache.get_or_fetch("k", ctx)
        assert value.reveal() == "v"
        assert ctx.count("anna", "get") == 1
        assert cache.stats.misses == 1
        assert cache.contains("k")

    def test_get_or_fetch_hit_stays_local(self, cache, anna):
        anna.put("k", lww("v"))
        cache.get_or_fetch("k")
        ctx = RequestContext()
        cache.get_or_fetch("k", ctx)
        assert ctx.count("anna", "get") == 0
        assert ctx.count("cache", "get") == 1
        assert cache.stats.hits == 1

    def test_put_updates_local_and_writes_back_to_anna(self, cache, anna):
        ctx = RequestContext()
        cache.put("k", lww("v"), ctx)
        assert cache.get_local("k").reveal() == "v"
        assert anna.get("k").reveal() == "v"
        # Write-back is asynchronous: only the IPC put is charged.
        assert ctx.count("cache", "put") == 1
        assert ctx.count("anna", "put") == 0

    def test_put_merges_with_existing(self, cache):
        cache.put("k", lww("old", clock=1.0))
        cache.put("k", lww("new", clock=2.0))
        assert cache.get_local("k").reveal() == "new"

    def test_evict_and_clear_update_index(self, cache, anna):
        cache.put("k", lww("v"))
        assert "cache-a" in anna.cache_index.caches_for("k")
        cache.evict("k")
        assert "cache-a" not in anna.cache_index.caches_for("k")
        cache.put("x", lww(1))
        cache.clear()
        assert cache.cached_keys() == []

    def test_hit_rate(self, cache, anna):
        anna.put("k", lww("v"))
        cache.get_or_fetch("k")
        cache.get_or_fetch("k")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_get_miss_is_counted_before_raising(self, cache, anna):
        # Regression: get() used to raise without touching stats.misses,
        # inflating hit_rate for callers that probe the cache first.
        anna.put("k", lww("v"))
        cache.get_or_fetch("k")   # miss (fetched), then...
        cache.get_or_fetch("k")   # ...hit
        with pytest.raises(KeyNotFoundError):
            cache.get("ghost")
        assert cache.stats.misses == 2
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(1 / 3)


class TestFreshness:
    def test_publish_cached_keys_feeds_index(self, cache, anna):
        cache.put("a", lww(1))
        cache.publish_cached_keys()
        assert "cache-a" in anna.cache_index.caches_for("a")

    def test_receive_update_merges_newer_value(self, cache):
        cache.put("k", lww("old", clock=1.0))
        cache.receive_update("k", lww("new", clock=5.0))
        assert cache.get_local("k").reveal() == "new"
        assert cache.stats.update_pushes_received == 1

    def test_receive_update_ignores_unknown_keys(self, cache):
        cache.receive_update("ghost", lww("x"))
        assert not cache.contains("ghost")

    def test_anna_propagates_updates_to_holding_cache(self, cache, anna):
        cache.put("k", lww("v1", clock=1.0))
        other = ExecutorCache("cache-b", anna, peer_registry={})
        other.put("k", lww("v2", clock=9.0))
        # cache-a held "k", so Anna pushed the newer version to it.
        assert cache.get_local("k").reveal() == "v2"


class TestSnapshotsAndUpstreamFetch:
    def test_snapshot_roundtrip_and_eviction(self, cache):
        value = lww("v")
        cache.create_snapshot("exec-1", "k", value)
        assert cache.get_snapshot("exec-1", "k") is value
        assert cache.snapshot_count() == 1
        assert cache.evict_snapshots("exec-1") == 1
        assert cache.get_snapshot("exec-1", "k") is None

    def test_duplicate_snapshot_is_ignored(self, cache):
        cache.create_snapshot("exec-1", "k", lww("v1"))
        cache.create_snapshot("exec-1", "k", lww("v2"))
        assert cache.get_snapshot("exec-1", "k").reveal() == "v1"

    def test_fetch_from_upstream_returns_snapshot(self, anna, peers):
        upstream = ExecutorCache("up", anna, peer_registry=peers)
        downstream = ExecutorCache("down", anna, peer_registry=peers)
        pinned = lww("pinned", clock=1.0)
        upstream.create_snapshot("exec-1", "k", pinned)
        ctx = RequestContext()
        value = downstream.fetch_from_upstream("up", "exec-1", "k", ctx)
        assert value.reveal() == "pinned"
        assert ctx.count("cache", "fetch_from_upstream") == 1
        assert downstream.contains("k")

    def test_fetch_from_upstream_falls_back_to_live_copy(self, anna, peers):
        upstream = ExecutorCache("up", anna, peer_registry=peers)
        downstream = ExecutorCache("down", anna, peer_registry=peers)
        upstream.put("k", lww("live"))
        assert downstream.fetch_from_upstream("up", "exec-1", "k").reveal() == "live"

    def test_fetch_from_unknown_upstream_raises(self, cache):
        with pytest.raises(ConsistencyError):
            cache.fetch_from_upstream("ghost-cache", "exec-1", "k")

    def test_fetch_missing_key_raises(self, anna, peers):
        ExecutorCache("up", anna, peer_registry=peers)
        downstream = ExecutorCache("down", anna, peer_registry=peers)
        with pytest.raises(ConsistencyError):
            downstream.fetch_from_upstream("up", "exec-1", "missing")


class TestCausalCut:
    def test_ensure_causal_cut_fetches_missing_dependency(self, cache, anna):
        dep = CausalLattice(VectorClock({"w": 1}), "dep-value")
        anna.put("dep", dep)
        value = CausalLattice(VectorClock({"w": 2}), "value",
                              dependencies={"dep": VectorClock({"w": 1})})
        cache.ensure_causal_cut(value)
        assert cache.contains("dep")
        assert cache.violates_causal_cut() == []

    def test_ensure_causal_cut_refreshes_stale_dependency(self, cache, anna):
        stale = CausalLattice(VectorClock({"w": 1}), "stale")
        cache.put("dep", stale)
        fresh = CausalLattice(VectorClock({"w": 5}), "fresh")
        anna.put("dep", fresh)
        value = CausalLattice(VectorClock({"x": 1}), "v",
                              dependencies={"dep": VectorClock({"w": 5})})
        cache.ensure_causal_cut(value)
        assert cache.get_local("dep").vector_clock.dominates_or_equal(VectorClock({"w": 5}))

    def test_violates_causal_cut_detects_stale_dependency(self, cache):
        cache._data["dep"] = CausalLattice(VectorClock({"w": 1}), "stale")
        cache._data["k"] = CausalLattice(VectorClock({"x": 1}), "v",
                                         dependencies={"dep": VectorClock({"w": 5})})
        assert ("k", "dep") in cache.violates_causal_cut()

    def test_non_causal_values_are_ignored(self, cache):
        cache.ensure_causal_cut(lww("x"))
        assert cache.violates_causal_cut() == []

    def test_violates_causal_cut_reports_missing_dependency(self, cache):
        # Regression: a *missing* dependency used to be skipped as if the cut
        # held.  A causal cut requires every dependency present at a
        # concurrent-or-newer version, so a hole in the cache is a violation.
        cache._data["k"] = CausalLattice(VectorClock({"x": 1}), "v",
                                         dependencies={"ghost": VectorClock({"w": 1})})
        assert ("k", "ghost") in cache.violates_causal_cut()

    def test_violates_causal_cut_reports_versionless_dependency(self, cache):
        # A dependency present only as a non-causal lattice has no vector
        # clock to compare against, so the cut property cannot hold either.
        cache._data["dep"] = lww("plain")
        cache._data["k"] = CausalLattice(VectorClock({"x": 1}), "v",
                                         dependencies={"dep": VectorClock({"w": 1})})
        assert ("k", "dep") in cache.violates_causal_cut()

    def test_ensure_causal_cut_walks_chains_deeper_than_old_cap(self, cache, anna):
        # Regression: the recursive implementation silently stopped after 8
        # hops, leaving the tail of long dependency chains unrepaired.
        depth = 12
        clocks = {i: VectorClock({"w": i + 1}) for i in range(depth)}
        anna.put("dep-0", CausalLattice(clocks[0], "v0"))
        for i in range(1, depth):
            anna.put(f"dep-{i}", CausalLattice(
                clocks[i], f"v{i}",
                dependencies={f"dep-{i - 1}": clocks[i - 1]}))
        head = CausalLattice(VectorClock({"h": 1}), "head",
                             dependencies={f"dep-{depth - 1}": clocks[depth - 1]})
        cache.ensure_causal_cut(head)
        assert all(cache.contains(f"dep-{i}") for i in range(depth))
        assert cache.violates_causal_cut() == []
        assert cache.stats.causal_dep_fetches == depth

    def test_ensure_causal_cut_terminates_on_cyclic_dependencies(self, cache, anna):
        anna.put("a", CausalLattice(VectorClock({"w": 1}), "a-v",
                                    dependencies={"b": VectorClock({"w": 1})}))
        anna.put("b", CausalLattice(VectorClock({"w": 1}), "b-v",
                                    dependencies={"a": VectorClock({"w": 1})}))
        head = CausalLattice(VectorClock({"h": 1}), "head",
                             dependencies={"a": VectorClock({"w": 1})})
        cache.ensure_causal_cut(head)  # must not loop forever
        assert cache.contains("a") and cache.contains("b")

    def test_ensure_causal_cut_counts_unresolved_dependencies(self, cache):
        head = CausalLattice(VectorClock({"h": 1}), "head",
                             dependencies={"nowhere": VectorClock({"w": 3})})
        cache.ensure_causal_cut(head)
        assert cache.stats.causal_deps_unresolved == 1
        # And storing the head now reports the hole as a violation.
        cache._data["head"] = head
        assert ("head", "nowhere") in cache.violates_causal_cut()


class TestClose:
    def test_close_deregisters_listener_and_peer_entry(self, anna, peers):
        cache = ExecutorCache("cache-x", anna, peer_registry=peers)
        other = ExecutorCache("cache-y", anna, peer_registry=peers)
        cache.put("k", lww("v1", clock=1.0))
        cache.close()
        assert "cache-x" not in peers
        assert "cache-x" not in anna.cache_index.caches_for("k")
        # A newer write no longer reaches the closed cache.
        other.put("k", lww("v2", clock=9.0))
        assert cache.stats.update_pushes_received == 0
        assert not cache.contains("k")

    def test_close_is_idempotent(self, cache):
        cache.close()
        cache.close()
        assert cache.closed

    def test_fetch_from_closed_upstream_raises_consistency_error(self, anna, peers):
        upstream = ExecutorCache("up", anna, peer_registry=peers)
        downstream = ExecutorCache("down", anna, peer_registry=peers)
        upstream.create_snapshot("exec-1", "k", lww("pinned"))
        upstream.close()
        with pytest.raises(ConsistencyError):
            downstream.fetch_from_upstream("up", "exec-1", "k")

    def test_fallback_rejects_mismatched_live_version(self, anna, peers):
        # With many sessions in flight, the upstream's live copy may have been
        # advanced by a different session after the snapshot was evicted; the
        # exact-version fetch must refuse it rather than silently serve it.
        upstream = ExecutorCache("up", anna, peer_registry=peers)
        downstream = ExecutorCache("down", anna, peer_registry=peers)
        pinned = lww("pinned", clock=1.0)
        upstream.put("k", pinned)
        expected = Timestamp(1.0, "n")
        upstream.evict_snapshots("exec-1")  # no snapshot pinned at all
        assert downstream.fetch_from_upstream(
            "up", "exec-1", "k", expected_version=expected).reveal() == "pinned"
        # Another session advances the live copy; the fallback must now fail.
        upstream.put("k", lww("advanced", clock=5.0))
        with pytest.raises(ConsistencyError):
            downstream.fetch_from_upstream("up", "exec-2", "k",
                                           expected_version=expected)
