"""Unit tests for the causal lattice (multi-value register + dependencies)."""


from repro.lattices import CausalLattice, VectorClock


def make(clock_entries, value, deps=None):
    return CausalLattice(VectorClock(clock_entries), value, dependencies=deps)


class TestCausalMerge:
    def test_newer_version_wins(self):
        old = make({"a": 1}, "old")
        new = make({"a": 2}, "new")
        assert old.merge(new).reveal() == "new"
        assert new.merge(old).reveal() == "new"
        assert not old.merge(new).is_conflicted

    def test_concurrent_versions_are_both_retained(self):
        left = make({"a": 1}, "left")
        right = make({"b": 1}, "right")
        merged = left.merge(right)
        assert merged.is_conflicted
        assert set(merged.concurrent_values) == {"left", "right"}

    def test_reveal_tie_break_is_deterministic(self):
        left = make({"a": 1}, "left")
        right = make({"b": 1}, "right")
        assert left.merge(right).reveal() == right.merge(left).reveal()

    def test_later_write_resolves_conflict(self):
        left = make({"a": 1}, "left")
        right = make({"b": 1}, "right")
        conflicted = left.merge(right)
        resolved = CausalLattice(conflicted.vector_clock.increment("c"), "resolved")
        merged = conflicted.merge(resolved)
        assert not merged.is_conflicted
        assert merged.reveal() == "resolved"

    def test_merge_unions_dependencies(self):
        left = make({"a": 1}, "x", deps={"k": VectorClock({"w": 1})})
        right = make({"b": 1}, "y", deps={"k": VectorClock({"w": 3}), "l": VectorClock({"v": 1})})
        merged = left.merge(right)
        assert merged.dependencies["k"].reveal() == {"w": 3}
        assert "l" in merged.dependencies

    def test_duplicate_delivery_is_idempotent(self):
        value = make({"a": 1}, "x")
        assert value.merge(value) == value


class TestCausalAccessors:
    def test_vector_clock_joins_siblings(self):
        merged = make({"a": 1}, "x").merge(make({"b": 2}, "y"))
        assert merged.vector_clock.reveal() == {"a": 1, "b": 2}

    def test_with_dependency_adds_and_merges(self):
        value = make({"a": 1}, "x")
        first = value.with_dependency("k", VectorClock({"w": 1}))
        second = first.with_dependency("k", VectorClock({"w": 4}))
        assert second.dependencies["k"].reveal() == {"w": 4}
        assert value.dependencies == {}

    def test_metadata_bytes_grows_with_dependencies(self):
        plain = make({"a": 1}, "x")
        heavy = plain
        for index in range(20):
            heavy = heavy.with_dependency(f"dep-{index}", VectorClock({"w": index + 1}))
        assert heavy.metadata_bytes() > plain.metadata_bytes()

    def test_size_includes_value(self):
        assert make({"a": 1}, "x" * 100).size_bytes() >= 100

    def test_empty_siblings_yield_empty_clock(self):
        # The constructor accepts an explicitly empty siblings iterable; the
        # cached-clock fast path must not IndexError on it.
        empty = CausalLattice(siblings=[])
        assert empty.vector_clock.reveal() == {}


class TestCausalReveal:
    def test_single_version_reveal(self):
        assert make({"a": 1}, 42).reveal() == 42

    def test_same_clock_different_payload_keeps_one_deterministically(self):
        a = CausalLattice(VectorClock({"n": 1}), "apple")
        b = CausalLattice(VectorClock({"n": 1}), "banana")
        assert a.merge(b).reveal() == b.merge(a).reveal() == "apple"
        assert not a.merge(b).is_conflicted
