"""Unit tests for the Cloudburst client API (Figure 2 semantics)."""

import pytest

from repro import CloudburstCluster, CloudburstReference
from repro.cloudburst import CloudburstClient
from repro.errors import KeyNotFoundError


@pytest.fixture
def cluster():
    return CloudburstCluster(executor_vms=2, scheduler_count=2, seed=3)


@pytest.fixture
def cloud(cluster):
    return cluster.connect()


class TestClientConstruction:
    def test_requires_schedulers(self):
        with pytest.raises(ValueError):
            CloudburstClient([])

    def test_connect_assigns_unique_ids(self, cluster):
        a = cluster.connect()
        b = cluster.connect()
        assert a.client_id != b.client_id


class TestKVSAccess:
    def test_put_get_roundtrip(self, cloud):
        cloud.put("key", {"x": [1, 2, 3]})
        assert cloud.get("key") == {"x": [1, 2, 3]}

    def test_get_missing_raises(self, cloud):
        with pytest.raises(KeyNotFoundError):
            cloud.get("missing")

    def test_delete(self, cloud):
        cloud.put("key", 1)
        assert cloud.delete("key")
        with pytest.raises(KeyNotFoundError):
            cloud.get("key")

    def test_reference_helper(self, cloud):
        assert cloud.reference("abc") == CloudburstReference("abc")


class TestFunctionCalls:
    def test_registered_function_behaves_like_a_callable(self, cloud):
        square = cloud.register(lambda x: x * x, name="square")
        assert square(7) == 49

    def test_reference_arguments_resolved(self, cloud):
        cloud.put("value", 5)
        square = cloud.register(lambda x: x * x, name="square")
        assert square(CloudburstReference("value")) == 25

    def test_store_in_kvs_returns_future(self, cloud):
        square = cloud.register(lambda x: x * x, name="square")
        future = square(3, store_in_kvs=True)
        assert future.get() == 9

    def test_latency_recorded_per_call(self, cloud):
        noop = cloud.register(lambda: None, name="noop")
        with pytest.raises(ValueError):
            _ = cloud.last_latency_ms
        noop()
        noop()
        assert cloud.last_latency_ms > 0
        assert len(cloud.latencies) == 2

    def test_calls_round_robin_across_schedulers(self, cluster, cloud):
        noop = cloud.register(lambda: None, name="noop")
        for _ in range(4):
            noop()
        counts = [s.stats.calls_per_function.get("noop", 0) for s in cluster.schedulers]
        assert all(count >= 1 for count in counts)


class TestDagCalls:
    def test_register_and_call_dag(self, cloud):
        cloud.register(lambda x: x + 1, name="inc")
        cloud.register(lambda x: x * 10, name="tenfold")
        cloud.register_dag("pipeline", ["inc", "tenfold"], [("inc", "tenfold")])
        result = cloud.call_dag("pipeline", {"inc": [4]})
        assert result.value == 50

    def test_async_dag_returns_future(self, cloud):
        cloud.register(lambda x: x - 1, name="dec")
        cloud.register_dag("decrement", ["dec"])
        future = cloud.call_dag_async("decrement", {"dec": [10]})
        assert future.get() == 9

    def test_future_for_unstored_result_raises(self, cloud):
        cloud.register(lambda: 1, name="f")
        result = cloud.call("f")
        with pytest.raises(ValueError):
            cloud._future_for(result)
