"""Unit tests for the Cloudburst client API (Figure 2 / Table 1 semantics)."""

import pytest

from repro import CloudburstCluster, CloudburstReference
from repro.cloudburst import CloudburstClient, CloudburstFuture
from repro.errors import (
    DagDeletedError,
    DagNotFoundError,
    KeyNotFoundError,
)
from repro.sim import Engine


@pytest.fixture
def cluster():
    return CloudburstCluster(executor_vms=2, scheduler_count=2, seed=3)


@pytest.fixture
def cloud(cluster):
    return cluster.connect()


class TestClientConstruction:
    def test_requires_schedulers(self):
        with pytest.raises(ValueError):
            CloudburstClient([])

    def test_connect_assigns_unique_ids(self, cluster):
        a = cluster.connect()
        b = cluster.connect()
        assert a.client_id != b.client_id


class TestKVSAccess:
    def test_put_get_roundtrip(self, cloud):
        cloud.put("key", {"x": [1, 2, 3]})
        assert cloud.get("key") == {"x": [1, 2, 3]}

    def test_get_missing_raises(self, cloud):
        with pytest.raises(KeyNotFoundError):
            cloud.get("missing")

    def test_delete(self, cloud):
        cloud.put("key", 1)
        assert cloud.delete("key")
        with pytest.raises(KeyNotFoundError):
            cloud.get("key")

    def test_reference_helper(self, cloud):
        assert cloud.reference("abc") == CloudburstReference("abc")


class TestFunctionCalls:
    def test_registered_function_behaves_like_a_callable(self, cloud):
        square = cloud.register(lambda x: x * x, name="square")
        assert square(7) == 49

    def test_reference_arguments_resolved(self, cloud):
        cloud.put("value", 5)
        square = cloud.register(lambda x: x * x, name="square")
        assert square(CloudburstReference("value")) == 25

    def test_store_in_kvs_returns_future(self, cloud):
        square = cloud.register(lambda x: x * x, name="square")
        future = square(3, store_in_kvs=True)
        assert future.get() == 9

    def test_latency_recorded_per_call(self, cloud):
        noop = cloud.register(lambda: None, name="noop")
        with pytest.raises(ValueError):
            _ = cloud.last_latency_ms
        noop()
        noop()
        assert cloud.last_latency_ms > 0
        assert len(cloud.latencies) == 2

    def test_calls_round_robin_across_schedulers(self, cluster, cloud):
        noop = cloud.register(lambda: None, name="noop")
        for _ in range(4):
            noop()
        counts = [s.stats.calls_per_function.get("noop", 0) for s in cluster.schedulers]
        assert all(count >= 1 for count in counts)


class TestDagCalls:
    def test_register_and_call_dag(self, cloud):
        cloud.register(lambda x: x + 1, name="inc")
        cloud.register(lambda x: x * 10, name="tenfold")
        cloud.register_dag("pipeline", ["inc", "tenfold"], [("inc", "tenfold")])
        result = cloud.call_dag("pipeline", {"inc": [4]})
        assert result.value == 50

    def test_call_dag_returns_resolved_future_on_sequential_backend(self, cloud):
        cloud.register(lambda x: x - 1, name="dec")
        cloud.register_dag("decrement", ["dec"])
        future = cloud.call_dag("decrement", {"dec": [10]})
        assert isinstance(future, CloudburstFuture)
        assert future.is_ready()           # inline execution: already resolved
        assert future.get() == 9
        assert future.result().latency_ms > 0

    def test_async_alias_stores_result_in_kvs(self, cloud):
        cloud.register(lambda x: x - 1, name="dec")
        cloud.register_dag("decrement", ["dec"])
        future = cloud.call_dag_async("decrement", {"dec": [10]})
        assert future.get() == 9
        assert future.result_key is not None
        assert cloud.kvs.get_plain(future.result_key) == 9


class TestRegisterOverwrite:
    def test_reregistering_overwrites_on_every_scheduler(self, cluster):
        # Regression: register used setdefault on the other schedulers, so a
        # re-registered name kept serving the old body from every scheduler
        # the round-robin happened to route to.
        cloud = cluster.connect()
        cloud.register(lambda x: x + 1, name="evolve")
        assert [cloud.call("evolve", [1]).value for _ in range(4)] == [2, 2, 2, 2]
        cloud.register(lambda x: x + 100, name="evolve")
        for scheduler in cluster.schedulers:
            assert scheduler.functions["evolve"](1) == 101
        # Every scheduler (round-robin) serves the *new* body, including the
        # executor threads that pinned the old one.
        assert [cloud.call("evolve", [1]).value for _ in range(4)] == [101] * 4

    def test_reregistration_visible_through_other_clients(self, cluster):
        alice = cluster.connect("alice")
        bob = cluster.connect("bob")
        alice.register(lambda: "v1", name="shared_fn")
        assert bob.call("shared_fn").value == "v1"
        bob.register(lambda: "v2", name="shared_fn")
        for _ in range(4):
            assert alice.call("shared_fn").value == "v2"


class TestDeleteDag:
    def test_delete_dag_refuses_later_calls(self, cloud):
        cloud.register(lambda x: x, name="echo")
        cloud.register_dag("echo-dag", ["echo"])
        assert cloud.call_dag("echo-dag", {"echo": [1]}).value == 1
        cloud.delete_dag("echo-dag")
        with pytest.raises(DagDeletedError):
            cloud.call_dag("echo-dag", {"echo": [1]})

    def test_delete_unknown_dag_raises_not_found(self, cloud):
        with pytest.raises(DagNotFoundError):
            cloud.delete_dag("never-registered")

    def test_deleted_dag_can_be_reregistered(self, cloud):
        cloud.register(lambda x: x * 2, name="double")
        cloud.register_dag("d", ["double"])
        cloud.delete_dag("d")
        cloud.register_dag("d", ["double"])
        assert cloud.call_dag("d", {"double": [3]}).value == 6

    def test_delete_dag_removes_persisted_topology(self, cluster, cloud):
        cloud.register(lambda x: x, name="echo")
        cloud.register_dag("echo-dag", ["echo"])
        assert cluster.kvs.contains("__cloudburst_dags__/echo-dag")
        cloud.delete_dag("echo-dag")
        assert not cluster.kvs.contains("__cloudburst_dags__/echo-dag")


class TestEngineBackedFutures:
    def _register(self, cluster):
        cloud = cluster.connect()
        cloud.register(lambda x: x + 1, name="inc")
        cloud.register(lambda x: x * 10, name="tenfold")
        cloud.register_dag("pipeline", ["inc", "tenfold"], [("inc", "tenfold")])
        return cloud

    def test_call_dag_returns_pending_future_before_execution(self, cluster):
        cloud = self._register(cluster)
        engine = Engine()
        cluster.attach_engine(engine)
        try:
            future = cloud.call_dag("pipeline", {"inc": [4]})
            assert not future.is_ready()   # returned before the DAG executed
            assert future.get() == 50      # get() advances virtual time
            assert engine.now_ms > 0
        finally:
            cluster.detach_engine()

    def test_add_done_callback_fires_from_engine_events(self, cluster):
        cloud = self._register(cluster)
        engine = Engine()
        cluster.attach_engine(engine)
        seen = []
        try:
            future = cloud.call_dag("pipeline", {"inc": [4]})
            future.add_done_callback(lambda f: seen.append(f.get()))
            assert seen == []
            engine.run()
            assert seen == [50]
        finally:
            cluster.detach_engine()

    def test_get_timeout_leaves_future_pending(self, cluster):
        from repro.errors import FutureTimeoutError

        cloud = self._register(cluster)
        engine = Engine()
        cluster.attach_engine(engine)
        try:
            future = cloud.call_dag("pipeline", {"inc": [4]})
            # The first charge alone (client_to_scheduler) exceeds 1 ns of
            # virtual time, so nothing can resolve within the deadline.
            with pytest.raises(FutureTimeoutError):
                future.get(timeout_ms=1e-6)
            assert not future.done()
            assert future.get() == 50      # a later unbounded get succeeds
        finally:
            cluster.detach_engine()

    def test_exception_probe_never_blocks_or_raises(self, cluster):
        cloud = self._register(cluster)
        engine = Engine()
        cluster.attach_engine(engine)
        try:
            future = cloud.call_dag("pipeline", {"inc": [4]})
            assert future.exception() is None      # pending: no advance, no raise
            assert not future.done()               # the probe spent no time
            assert engine.now_ms == 0.0
            assert future.get() == 50
            assert future.exception() is None      # resolved successfully
        finally:
            cluster.detach_engine()

    def test_blocking_inside_an_engine_event_is_a_programming_error(self, cluster):
        cloud = self._register(cluster)
        engine = Engine()
        cluster.attach_engine(engine)
        caught = []
        try:
            future = cloud.call_dag("pipeline", {"inc": [4]})

            def block_from_event():
                try:
                    future.get(timeout_ms=10.0)
                except Exception as error:  # noqa: BLE001 - recording the type
                    caught.append(error)

            engine.at(0.0, block_from_event)
            engine.run()
        finally:
            cluster.detach_engine()
        # RuntimeError, not FutureTimeoutError: a timeout-tolerant caller must
        # not mistake the reentrancy violation for "not ready yet".
        assert caught and isinstance(caught[0], RuntimeError)

    def test_engine_store_in_kvs_populates_result_key(self, cluster):
        cloud = self._register(cluster)
        engine = Engine()
        cluster.attach_engine(engine)
        try:
            future = cloud.call_dag("pipeline", {"inc": [4]}, store_in_kvs=True)
            assert future.get() == 50
            assert future.result_key is not None
            assert cloud.kvs.get_plain(future.result_key) == 50
        finally:
            cluster.detach_engine()
