"""Unit tests for the consistency-level enum."""

import pytest

from repro.cloudburst import ConsistencyLevel
from repro.cloudburst.consistency import CAUSAL_STRICTNESS_ORDER


class TestLevelProperties:
    def test_causal_levels(self):
        assert not ConsistencyLevel.LWW.is_causal
        assert not ConsistencyLevel.DISTRIBUTED_SESSION_RR.is_causal
        assert ConsistencyLevel.SINGLE_KEY_CAUSAL.is_causal
        assert ConsistencyLevel.MULTI_KEY_CAUSAL.is_causal
        assert ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL.is_causal

    def test_dependency_tracking_levels(self):
        assert not ConsistencyLevel.SINGLE_KEY_CAUSAL.tracks_dependencies
        assert ConsistencyLevel.MULTI_KEY_CAUSAL.tracks_dependencies
        assert ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL.tracks_dependencies

    def test_read_set_shipping_levels(self):
        assert ConsistencyLevel.DISTRIBUTED_SESSION_RR.ships_read_set
        assert ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL.ships_read_set
        assert not ConsistencyLevel.LWW.ships_read_set
        assert not ConsistencyLevel.MULTI_KEY_CAUSAL.ships_read_set

    def test_short_names_unique(self):
        names = [level.short_name for level in ConsistencyLevel]
        assert len(names) == len(set(names))
        assert "LWW" in names and "DSC" in names


class TestFromString:
    @pytest.mark.parametrize("name,expected", [
        ("lww", ConsistencyLevel.LWW),
        ("LWW", ConsistencyLevel.LWW),
        ("dsrr", ConsistencyLevel.DISTRIBUTED_SESSION_RR),
        ("sk", ConsistencyLevel.SINGLE_KEY_CAUSAL),
        ("mk", ConsistencyLevel.MULTI_KEY_CAUSAL),
        ("dsc", ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL),
        ("distributed_session_causal", ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL),
    ])
    def test_parsing(self, name, expected):
        assert ConsistencyLevel.from_string(name) == expected

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            ConsistencyLevel.from_string("serializable")


class TestStrictnessOrder:
    def test_table2_order(self):
        assert CAUSAL_STRICTNESS_ORDER == (
            ConsistencyLevel.SINGLE_KEY_CAUSAL,
            ConsistencyLevel.MULTI_KEY_CAUSAL,
            ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL,
        )
