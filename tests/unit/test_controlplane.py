"""Unit tests for the compute-tier control plane (§4.1, §4.4).

Covers the three pieces in isolation: the metrics publisher (alive VMs +
scheduler call totals to Anna), the monitoring aggregation over the
published keys, and the autoscaler's actuation — capacity changes, the
scale-down grace period, and pin migration off draining executors.
"""

import pytest

from repro import CloudburstCluster
from repro.cloudburst import Dag
from repro.cloudburst.controlplane import (
    ComputeAutoscaler,
    ComputeControlPlane,
    MetricsPublisher,
)
from repro.cloudburst.executor import EXECUTOR_METRICS_PREFIX
from repro.cloudburst.monitoring import (
    SCHEDULER_METRICS_PREFIX,
    MonitoringConfig,
)
from repro.sim import AutoscalerDecision


def make_cluster(executor_vms=3, threads_per_vm=2, seed=3):
    return CloudburstCluster(executor_vms=executor_vms,
                             threads_per_vm=threads_per_vm, seed=seed)


class TestMetricsPublisher:
    def test_publishes_alive_vms_and_scheduler_totals(self):
        cluster = make_cluster()
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x, name="f")
        scheduler.call("f", [1])
        scheduler.call("f", [2])
        publisher = MetricsPublisher(cluster)
        publisher.publish()
        vm = cluster.vms[0]
        published = cluster.kvs.get_plain(EXECUTOR_METRICS_PREFIX + vm.vm_id)
        assert published["vm_id"] == vm.vm_id
        assert published["threads_alive"] == 2
        sched_stats = cluster.kvs.get_plain(
            SCHEDULER_METRICS_PREFIX + scheduler.scheduler_id)
        assert sched_stats["function_calls"] == 2
        assert publisher.published_ticks == 1

    def test_drained_vm_not_published_and_key_removed(self):
        cluster = make_cluster()
        victim = cluster.vms[-1]
        cluster.drain_vm(victim)
        publisher = MetricsPublisher(cluster)
        publisher.publish()
        assert not cluster.kvs.contains(EXECUTOR_METRICS_PREFIX + victim.vm_id)
        for vm in cluster.vms:
            if vm.alive:
                assert cluster.kvs.contains(EXECUTOR_METRICS_PREFIX + vm.vm_id)


class TestMonitoringAggregation:
    def test_dead_vm_excluded_even_with_stale_metrics_key(self):
        # Regression: collect_utilization used to average over every roster
        # entry, so a drained VM (stale key or zero ghost) deflated the mean
        # right after a scale-down and delayed the next scale-up.
        cluster = make_cluster(executor_vms=2)
        live, dead = cluster.vms
        live.inflight = len(live.threads)  # saturated
        cluster.publish_all_metrics()
        dead.alive = False
        # Plant a stale metrics key claiming the dead VM is idle.
        cluster.kvs.put_plain(EXECUTOR_METRICS_PREFIX + dead.vm_id,
                              {"vm_id": dead.vm_id, "utilization": 0.0})
        assert cluster.monitoring.collect_utilization() == pytest.approx(1.0)

    def test_collect_metrics_counts_alive_only(self):
        cluster = make_cluster(executor_vms=3, threads_per_vm=2)
        cluster.drain_vm(cluster.vms[-1])
        metrics = cluster.monitoring.collect_metrics()
        assert metrics["vm_count"] == 2
        assert metrics["thread_count"] == 4

    def test_invocation_and_capacity_totals_from_published_keys(self):
        cluster = make_cluster(executor_vms=2, threads_per_vm=2)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x, name="f")
        for i in range(5):
            scheduler.call("f", [i])
        cluster.publish_all_metrics()
        monitoring = cluster.monitoring
        assert monitoring.collect_invocation_total() == 5
        assert monitoring.collect_capacity_threads() == 4
        assert monitoring.collect_scheduler_call_total() == 5

    def test_dag_calls_weighed_in_function_units(self):
        # A k-function DAG call is k units of arriving work — otherwise the
        # §4.4 backlog condition could never fire for DAG workloads (their
        # completion signal counts every function execution).
        cluster = make_cluster(executor_vms=2, threads_per_vm=2)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x + 1, name="a")
        scheduler.register_function(lambda x: x * 2, name="b")
        scheduler.register_dag(Dag.chain("ab", ["a", "b"]))
        for i in range(3):
            scheduler.call_dag("ab", {"a": [i]})
        # Live-stats fallback path.
        assert cluster.monitoring.collect_scheduler_call_total() == 6
        # Published path (dag_calls_by_name payload).
        MetricsPublisher(cluster).publish()
        assert cluster.monitoring.collect_scheduler_call_total() == 6
        assert cluster.monitoring.collect_invocation_total() == 6


class TestPinScrubbing:
    def _pinned_cluster(self):
        cluster = make_cluster(executor_vms=3, threads_per_vm=2)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x + 1, name="inc")
        scheduler.register_dag(Dag.chain("inc-dag", ["inc"]))
        scheduler.pin_function("inc", replicas=6)  # every thread
        return cluster, scheduler

    def test_drain_vm_scrubs_pins(self):
        # Regression: drain_vm used to leave the drained VM's thread ids in
        # scheduler.function_pins (only remove_vm scrubbed them), so stale
        # entries kept satisfying replica quotas while routing nowhere.
        cluster, scheduler = self._pinned_cluster()
        victim = cluster.vms[-1]
        departed = set(victim.thread_ids())
        cluster.drain_vm(victim)
        assert not departed & set(scheduler.function_pins["inc"])

    def test_pinned_function_remains_callable_after_drain(self):
        cluster, scheduler = self._pinned_cluster()
        cluster.drain_vm(cluster.vms[-1])
        result = scheduler.call_dag("inc-dag", {"inc": [41]})
        assert result.value == 42
        # And re-pinning tops up with *live* replicas, not stale ids.
        pins = scheduler.pin_function("inc", replicas=4)
        live_ids = {t.thread_id for t in scheduler._live_threads()}
        assert set(pins) <= live_ids
        assert len(pins) == 4

    def test_remove_vm_still_scrubs(self):
        cluster, scheduler = self._pinned_cluster()
        victim = cluster.vms[-1]
        departed = set(victim.thread_ids())
        cluster.remove_vm(victim.vm_id)
        assert not departed & set(scheduler.function_pins["inc"])


class TestComputeAutoscalerActuation:
    def test_add_capacity_builds_vms(self):
        cluster = make_cluster(executor_vms=1, threads_per_vm=3)
        autoscaler = ComputeAutoscaler(cluster)
        added = autoscaler.add_capacity(7)
        assert added == 3  # 3 + 3 + 1
        assert autoscaler._live_thread_count() == 10
        assert autoscaler.capacity_timeline[-1][1] == 10

    def test_add_capacity_respects_max_vms(self):
        cluster = make_cluster(executor_vms=2, threads_per_vm=3)
        autoscaler = ComputeAutoscaler(
            cluster, config=MonitoringConfig(max_vms=3))
        added = autoscaler.add_capacity(9)
        assert added == 1  # ceiling reached after one VM
        assert sum(1 for vm in cluster.vms if vm.alive) == 3
        assert autoscaler.add_capacity(3) == 0  # at the ceiling: no-op

    def test_drain_capacity_respects_min_threads_and_migrates_pins(self):
        cluster = make_cluster(executor_vms=3, threads_per_vm=2)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x, name="hot")
        scheduler.pin_function("hot", replicas=6)
        autoscaler = ComputeAutoscaler(cluster, min_threads=2)
        drained = autoscaler.drain_capacity(100, now_ms=1_000.0)
        assert drained == 4
        assert autoscaler._live_thread_count() == 2
        # Pins migrated onto the survivors before the threads went dark.
        live_ids = {t.thread_id for t in scheduler._live_threads()}
        assert set(scheduler.function_pins["hot"]) == live_ids
        assert autoscaler.migrations
        migration = autoscaler.migrations[0]
        assert migration.function == "hot"
        assert migration.at_ms == 1_000.0
        assert not set(migration.from_threads) & live_ids

    def test_no_calls_routed_to_drained_threads(self):
        cluster = make_cluster(executor_vms=2, threads_per_vm=2)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x, name="f")
        autoscaler = ComputeAutoscaler(cluster, min_threads=1)
        autoscaler.drain_capacity(3)
        for i in range(10):
            scheduler.call("f", [i])
        assert autoscaler.calls_routed_to_drained() == 0

    def test_fully_drained_vm_keeps_completion_totals(self):
        cluster = make_cluster(executor_vms=2, threads_per_vm=2)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x, name="f")
        for i in range(8):
            scheduler.call("f", [i])
        cluster.publish_all_metrics()
        autoscaler = ComputeAutoscaler(cluster, min_threads=1)
        before = (cluster.monitoring.collect_invocation_total()
                  + autoscaler._retired_invocations)
        autoscaler.drain_capacity(3)
        after = (cluster.monitoring.collect_invocation_total()
                 + autoscaler._retired_invocations)
        # Retired VMs' invocation totals survive as the retired counter, so
        # the completion rate never reads negative after a scale-down.
        assert after == before


class TestRateBaselines:
    def test_attach_seeds_baselines_on_reused_cluster(self):
        # Regression: a fresh autoscaler attached to a cluster that already
        # served traffic used to report the whole lifetime of calls as one
        # interval's delta on its first tick (suppressing the zero-load
        # drain and spuriously triggering backlog repinning).
        from repro.sim import Engine

        cluster = make_cluster()
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x, name="f")
        for i in range(20):
            scheduler.call("f", [i])
        autoscaler = ComputeAutoscaler(cluster)
        autoscaler.attach_engine(Engine(), interval_ms=1_000.0)
        report = autoscaler.tick(1_000.0)
        assert report.arrival_rate_per_s == 0.0
        assert report.completion_rate_per_s == 0.0


class TestGracePeriod:
    def _canned_policy(self, decisions):
        """A policy that replays canned decisions, one per tick."""
        queue = list(decisions)

        def policy(now_ms, metrics):
            return queue.pop(0) if queue else None

        return policy

    def test_low_utilization_drain_waits_for_grace(self):
        cluster = make_cluster(executor_vms=3, threads_per_vm=2)
        down = AutoscalerDecision(remove_threads=2)
        autoscaler = ComputeAutoscaler(
            cluster, policy=self._canned_policy([down, down]),
            min_threads=1, grace_ticks=2)
        autoscaler.tick(1_000.0)
        assert autoscaler._live_thread_count() == 6  # first tick: grace
        autoscaler.tick(2_000.0)
        assert autoscaler._live_thread_count() == 4  # second tick actuates

    def test_urgent_drain_skips_grace(self):
        cluster = make_cluster(executor_vms=3, threads_per_vm=2)
        down = AutoscalerDecision(remove_threads=4, urgent=True)
        autoscaler = ComputeAutoscaler(
            cluster, policy=self._canned_policy([down]),
            min_threads=2, grace_ticks=3)
        autoscaler.tick(1_000.0)
        assert autoscaler._live_thread_count() == 2

    def test_grace_counter_resets_on_quiet_tick(self):
        cluster = make_cluster(executor_vms=3, threads_per_vm=2)
        down = AutoscalerDecision(remove_threads=2)
        autoscaler = ComputeAutoscaler(
            cluster, policy=self._canned_policy([down, None, down]),
            min_threads=1, grace_ticks=2)
        for tick in range(3):
            autoscaler.tick(1_000.0 * (tick + 1))
        # down, quiet, down: never two consecutive low ticks -> no actuation.
        assert autoscaler._live_thread_count() == 6


class TestControlPlaneConfig:
    def test_publish_interval_defaults_to_half_policy_interval(self):
        cluster = make_cluster()
        plane = ComputeControlPlane(cluster, policy_interval_ms=4_000.0)
        assert plane.publish_interval_ms == 2_000.0

    def test_rejects_bad_intervals(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            ComputeControlPlane(cluster, policy_interval_ms=0.0)
        with pytest.raises(ValueError):
            ComputeControlPlane(cluster, publish_interval_ms=-1.0)

    def test_snapshot_shape(self):
        cluster = make_cluster()
        plane = ComputeControlPlane(cluster)
        snapshot = plane.snapshot()
        for key in ("publish_interval_ms", "policy_interval_ms",
                    "scale_up_events", "migrations",
                    "calls_routed_to_drained", "baseline_threads",
                    "peak_threads", "final_threads"):
            assert key in snapshot
