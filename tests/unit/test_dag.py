"""Unit tests for the DAG model and registry."""

import pytest

from repro.cloudburst import Dag, DagRegistry
from repro.errors import DagNotFoundError, InvalidDagError


class TestDagValidation:
    def test_requires_name_and_functions(self):
        with pytest.raises(InvalidDagError):
            Dag("", ["f"])
        with pytest.raises(InvalidDagError):
            Dag("d", [])

    def test_rejects_duplicate_functions(self):
        with pytest.raises(InvalidDagError):
            Dag("d", ["f", "f"])

    def test_rejects_unknown_edge_endpoints(self):
        with pytest.raises(InvalidDagError):
            Dag("d", ["f"], [("f", "ghost")])

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidDagError):
            Dag("d", ["f", "g"], [("f", "f")])

    def test_rejects_cycle(self):
        with pytest.raises(InvalidDagError):
            Dag("d", ["a", "b"], [("a", "b"), ("b", "a")])


class TestDagStructure:
    def test_chain_constructor(self):
        dag = Dag.chain("pipeline", ["a", "b", "c"])
        assert dag.is_linear
        assert dag.sources == ["a"]
        assert dag.sinks == ["c"]
        assert dag.topological_order() == ["a", "b", "c"]
        assert dag.longest_path_length() == 3

    def test_single_function_dag(self):
        dag = Dag("single", ["only"])
        assert dag.is_linear
        assert dag.sources == dag.sinks == ["only"]
        assert dag.longest_path_length() == 1

    def test_fan_out_is_not_linear(self):
        dag = Dag("fan", ["root", "left", "right"],
                  [("root", "left"), ("root", "right")])
        assert not dag.is_linear
        assert sorted(dag.sinks) == ["left", "right"]
        assert dag.downstream_of("root") == ["left", "right"]
        assert dag.upstream_of("left") == ["root"]

    def test_diamond_topology(self):
        dag = Dag("diamond", ["a", "b", "c", "d"],
                  [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        order = dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")
        assert dag.longest_path_length() == 3
        assert dag.sinks == ["d"]

    def test_topological_order_is_deterministic(self):
        dag = Dag("fan", ["root", "z", "a"], [("root", "z"), ("root", "a")])
        assert dag.topological_order() == dag.topological_order()


class TestDagRegistry:
    def test_register_and_get(self):
        registry = DagRegistry()
        dag = Dag.chain("p", ["f", "g"])
        registry.register(dag)
        assert registry.get("p") is dag
        assert "p" in registry
        assert registry.names() == ["p"]

    def test_get_unknown_raises(self):
        with pytest.raises(DagNotFoundError):
            DagRegistry().get("ghost")

    def test_call_counting(self):
        registry = DagRegistry()
        registry.register(Dag.chain("p", ["f"]))
        registry.record_call("p")
        registry.record_call("p")
        assert registry.call_count("p") == 2
        assert registry.call_count("other") == 0

    def test_unregister_distinguishes_deleted_from_unknown(self):
        from repro.errors import DagDeletedError

        registry = DagRegistry()
        registry.register(Dag.chain("p", ["f"]))
        assert registry.unregister("p") is True
        assert "p" not in registry
        with pytest.raises(DagDeletedError):
            registry.get("p")
        assert registry.unregister("p") is False  # second delete: no-op
        with pytest.raises(DagNotFoundError):
            registry.unregister("ghost")

    def test_reregistering_a_deleted_name_revives_it(self):
        registry = DagRegistry()
        registry.register(Dag.chain("p", ["f"]))
        registry.unregister("p")
        revived = Dag.chain("p", ["f", "g"])
        registry.register(revived)
        assert registry.get("p") is revived
