"""Unit tests for the SQLite cold tier and its StorageNode integration.

The durable tier's contract (see DESIGN.md, DR-5): demotions commit the
pickled lattice to a WAL database, promotions merge back by the normal
lattice rules, and a crash (``forget_volatile`` + reopening the file) hands a
restarted node its cold set byte-for-byte.
"""

import pickle
import sqlite3

import pytest

from repro.durable import SCHEMA_VERSION, SqliteColdTier
from repro.lattices import CausalLattice, LWWLattice, Timestamp, VectorClock
from repro.anna import StorageNode


def lww(value, clock=1.0, node="n"):
    return LWWLattice(Timestamp(clock, node), value)


def causal(value, **clock_entries):
    return CausalLattice(VectorClock(clock_entries), value)


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "cold.sqlite"


class TestSqliteColdTier:
    def test_wal_mode_and_schema_version(self, db_path):
        tier = SqliteColdTier(db_path, "node-0")
        conn = sqlite3.connect(str(db_path))
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        version = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
        assert version == (str(SCHEMA_VERSION),)
        conn.close()
        tier.close()

    def test_put_get_roundtrip(self, db_path):
        tier = SqliteColdTier(db_path, "node-0")
        tier.put("k", lww("hello"), last_access_ms=42.0)
        value = tier.get("k")
        assert value.reveal() == "hello"
        assert tier.contains("k")
        assert tier.keys() == ["k"]
        assert tier.key_count() == 1
        assert tier.access_times() == {"k": 42.0}
        tier.close()

    def test_rows_survive_close_and_reopen_byte_identically(self, db_path):
        tier = SqliteColdTier(db_path, "node-0")
        original = causal("v1", a=3, b=1)
        tier.put("k", original)
        before = tier.raw_payload("k")
        tier.close()

        reopened = SqliteColdTier(db_path, "node-0")
        assert reopened.raw_payload("k") == before
        assert pickle.loads(before).reveal() == "v1"
        reopened.close()

    def test_vector_clock_column_is_queryable(self, db_path):
        tier = SqliteColdTier(db_path, "node-0")
        tier.put("c", causal("v", a=2, b=5))
        tier.put("plain", lww("v"))
        assert tier.vector_clock("c") == {"a": 2, "b": 5}
        assert tier.vector_clock("plain") == {}
        assert tier.vector_clock("ghost") is None
        tier.close()

    def test_merge_retains_concurrent_siblings(self, db_path):
        # A concurrent write raced the demotion: the on-disk merge must keep
        # both versions as siblings, and the joined clock covers both.
        tier = SqliteColdTier(db_path, "node-0")
        tier.put("k", causal("from-a", a=1))
        merged = tier.merge("k", causal("from-b", b=1))
        assert len(merged.siblings) == 2
        assert tier.vector_clock("k") == {"a": 1, "b": 1}
        stored = tier.get("k")
        assert set(stored.concurrent_values) == {"from-a", "from-b"}
        tier.close()

    def test_merge_dominating_clock_replaces(self, db_path):
        tier = SqliteColdTier(db_path, "node-0")
        tier.put("k", causal("old", a=1))
        merged = tier.merge("k", causal("new", a=2))
        assert len(merged.siblings) == 1
        assert merged.reveal() == "new"
        tier.close()

    def test_pop_reads_and_deletes(self, db_path):
        tier = SqliteColdTier(db_path, "node-0")
        tier.put("k", lww("v"))
        assert tier.pop("k").reveal() == "v"
        assert not tier.contains("k")
        assert tier.pop("k") is None
        tier.close()

    def test_per_node_tables_are_isolated(self, db_path):
        # One shared database file, one table per node id.
        a = SqliteColdTier(db_path, "node-a")
        b = SqliteColdTier(db_path, "node-b")
        a.put("k", lww("from-a"))
        assert not b.contains("k")
        b.put("k", lww("from-b"))
        assert a.get("k").reveal() == "from-a"
        assert b.get("k").reveal() == "from-b"
        a.close()
        b.close()

    def test_hostile_node_ids_become_safe_table_names(self, db_path):
        tier = SqliteColdTier(db_path, 'x"; DROP TABLE meta; --')
        tier.put("k", lww("v"))
        assert tier.get("k").reveal() == "v"
        conn = sqlite3.connect(str(db_path))
        assert conn.execute("SELECT COUNT(*) FROM meta").fetchone()[0] == 2
        conn.close()
        tier.close()

    def test_access_times_order_coldest_first(self, db_path):
        tier = SqliteColdTier(db_path, "node-0")
        tier.put("warm", lww(1), last_access_ms=300.0)
        tier.put("cold", lww(2), last_access_ms=10.0)
        assert list(tier.access_times()) == ["cold", "warm"]
        tier.close()


class TestStorageNodeWithColdTier:
    def _node(self, db_path, capacity=2):
        tier = SqliteColdTier(db_path, "s1")
        return StorageNode("s1", memory_capacity_keys=capacity,
                           cold_tier=tier), tier

    def test_capacity_demotion_lands_in_sqlite(self, db_path):
        node, tier = self._node(db_path, capacity=2)
        node.put("a", lww(1), now_ms=1.0)
        node.put("b", lww(2), now_ms=2.0)
        node.put("c", lww(3), now_ms=3.0)  # evicts coldest ("a") to disk
        assert node.tier_of("a") == StorageNode.DISK_TIER
        assert tier.contains("a")
        assert node.memory_key_count() == 2
        assert node.key_count() == 3
        assert node.demotions == 1
        node.cold_tier.close()

    def test_put_to_demoted_key_merges_on_disk(self, db_path):
        node, tier = self._node(db_path)
        node.put("k", causal("v1", a=1))
        node.demote("k")
        node.put("k", causal("v2", a=2))
        assert node.tier_of("k") == StorageNode.DISK_TIER
        assert tier.get("k").reveal() == "v2"
        assert tier.vector_clock("k") == {"a": 2}
        node.cold_tier.close()

    def test_promotion_merges_into_memory_copy(self, db_path):
        # Demote, then a fresh memory-tier write races the cold copy; the
        # promotion must merge rather than clobber either side.
        node, tier = self._node(db_path, capacity=10)
        node.put("k", causal("cold-version", a=1))
        node.demote("k")
        node._memory["k"] = causal("hot-version", b=1)
        assert node.promote("k")
        merged = node.get("k")
        assert set(merged.concurrent_values) == {"cold-version", "hot-version"}
        assert not tier.contains("k")
        node.cold_tier.close()

    def test_delete_removes_from_both_tiers(self, db_path):
        node, tier = self._node(db_path)
        node.put("k", lww("v"))
        node.demote("k")
        assert node.delete("k")
        assert not node.contains("k")
        assert not tier.contains("k")
        node.cold_tier.close()

    def test_drain_empties_the_durable_table(self, db_path):
        node, tier = self._node(db_path)
        node.put("mem", lww(1))
        node.put("cold", lww(2))
        node.demote("cold")
        drained = node.drain()
        assert set(drained) == {"mem", "cold"}
        assert tier.key_count() == 0
        node.cold_tier.close()

    def test_crash_keeps_cold_set_and_restart_recovers_it(self, db_path):
        node, tier = self._node(db_path, capacity=10)
        node.put("hot", lww("gone"), now_ms=5.0)
        node.put("cold", causal("kept", a=1), now_ms=7.0)
        node.demote("cold")
        payload_before = tier.raw_payload("cold")

        node.forget_volatile()
        node.cold_tier.close()

        restarted = StorageNode("s1", memory_capacity_keys=10,
                                cold_tier=SqliteColdTier(db_path, "s1"))
        assert restarted.recover_cold_set() == 1
        assert restarted.tier_of("cold") == StorageNode.DISK_TIER
        assert restarted.tier_of("hot") is None  # volatile tier died
        assert restarted.cold_tier.raw_payload("cold") == payload_before
        assert restarted.stats("cold").last_access_ms == 7.0
        restarted.cold_tier.close()

    def test_without_cold_tier_disk_dict_still_works(self):
        node = StorageNode("s1")
        node.put("k", lww("v"))
        node.demote("k")
        assert node.tier_of("k") == StorageNode.DISK_TIER
        assert node.recover_cold_set() == 0
