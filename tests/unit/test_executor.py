"""Unit tests for executor VMs, threads and the user-facing library."""

import pytest

from repro.anna import AnnaCluster
from repro.cloudburst import (
    CloudburstReference,
    ConsistencyLevel,
    ExecutorVM,
    MessageRouter,
    simulated_compute,
)
from repro.cloudburst.consistency.protocols import SessionState, make_protocol
from repro.cloudburst.executor import EXECUTOR_METRICS_PREFIX, function_key
from repro.errors import ExecutorFailedError, FunctionNotFoundError
from repro.lattices import LWWLattice, Timestamp
from repro.sim import LatencyModel, RequestContext


@pytest.fixture
def anna():
    return AnnaCluster(node_count=2, latency_model=LatencyModel(jitter_enabled=False))


@pytest.fixture
def vm(anna):
    router = MessageRouter(anna)
    return ExecutorVM("vm-0", anna, router, threads_per_vm=3)


def run(thread, name, args=(), level=ConsistencyLevel.LWW, ctx=None):
    state = SessionState.create(level)
    protocol = make_protocol(level)
    return thread.execute(name, args, ctx, state, protocol)


class TestExecutorVM:
    def test_rejects_nonpositive_threads(self, anna):
        with pytest.raises(ValueError):
            ExecutorVM("bad", anna, MessageRouter(anna), threads_per_vm=0)

    def test_threads_registered_with_router(self, vm):
        for thread in vm.threads:
            assert vm.router.is_registered(thread.thread_id)

    def test_utilization_tracks_inflight(self, vm):
        assert vm.utilization() == 0.0
        vm.inflight = 2
        assert vm.utilization() == pytest.approx(2 / 3)
        vm.inflight = 10
        assert vm.utilization() == 1.0

    def test_pick_thread_prefers_least_loaded(self, vm):
        vm.threads[0].invocation_count = 5
        assert vm.pick_thread() is not vm.threads[0]

    def test_fail_and_recover(self, vm, anna):
        vm.cache.put("k", LWWLattice(Timestamp(1.0, "n"), "v"))
        vm.fail()
        assert not vm.alive
        assert all(not t.alive for t in vm.threads)
        vm.recover()
        assert vm.alive
        # Recovery restarts the container with a cold cache.
        assert vm.cache.cached_keys() == []

    def test_publish_metrics_writes_to_kvs(self, vm, anna):
        vm.publish_metrics()
        metrics = anna.get_plain(EXECUTOR_METRICS_PREFIX + "vm-0")
        assert metrics["vm_id"] == "vm-0"
        assert metrics["alive"] is True


class TestFunctionExecution:
    def test_executes_plain_function(self, vm, anna):
        anna.put_plain(function_key("double"), lambda x: x * 2)
        thread = vm.threads[0]
        assert run(thread, "double", [21]) == 42
        assert thread.invocation_count == 1
        assert thread.has_function("double")

    def test_unknown_function_raises(self, vm):
        with pytest.raises(FunctionNotFoundError):
            run(vm.threads[0], "missing", [])

    def test_dead_executor_raises(self, vm, anna):
        anna.put_plain(function_key("f"), lambda: 1)
        vm.fail()
        with pytest.raises(ExecutorFailedError):
            run(vm.threads[0], "f")

    def test_references_resolved_before_invocation(self, vm, anna):
        anna.put_plain("data", 10)
        anna.put_plain(function_key("add"), lambda a, b: a + b)
        result = run(vm.threads[0], "add", [CloudburstReference("data"), 5])
        assert result == 15

    def test_pin_function_avoids_refetch(self, vm, anna):
        anna.put_plain(function_key("f"), lambda: "pinned")
        thread = vm.threads[0]
        thread.pin_function("f")
        ctx = RequestContext()
        run(thread, "f", ctx=ctx)
        assert ctx.count("cloudburst", "deserialize_function") == 0

    def test_declared_compute_cost_is_charged(self, vm, anna):
        @simulated_compute(50.0)
        def slow():
            return "done"

        anna.put_plain(function_key("slow"), slow)
        ctx = RequestContext()
        run(vm.threads[0], "slow", ctx=ctx)
        assert ctx.total("compute", "user_function") > 30.0

    def test_invoke_overhead_charged(self, vm, anna):
        anna.put_plain(function_key("f"), lambda: None)
        ctx = RequestContext()
        run(vm.threads[0], "f", ctx=ctx)
        assert ctx.count("cloudburst", "invoke") == 1

    def test_utilization_window(self, vm, anna):
        anna.put_plain(function_key("f"), lambda: None)
        ctx = RequestContext()
        run(vm.threads[0], "f", ctx=ctx)
        assert vm.threads[0].utilization(window_ms=1_000.0) > 0.0
        vm.threads[0].reset_window()
        assert vm.threads[0].utilization(window_ms=1_000.0) == 0.0


class TestUserLibrary:
    def test_get_put_delete_and_id(self, vm, anna):
        def stateful(cloudburst, key):
            cloudburst.put(key, {"count": 1})
            value = cloudburst.get(key)
            identity = cloudburst.get_id()
            cloudburst.delete(key)
            return value, identity

        anna.put_plain(function_key("stateful"), stateful)
        thread = vm.threads[1]
        value, identity = run(thread, "stateful", ["state-key"])
        assert value == {"count": 1}
        assert identity == thread.thread_id
        assert not anna.contains("state-key")

    def test_send_recv_between_threads(self, vm, anna):
        def sender(cloudburst, recipient):
            return cloudburst.send(recipient, "ping")

        def receiver(cloudburst):
            return cloudburst.recv()

        anna.put_plain(function_key("sender"), sender)
        anna.put_plain(function_key("receiver"), receiver)
        t0, t1 = vm.threads[0], vm.threads[1]
        assert run(t0, "sender", [t1.thread_id]) is True
        assert run(t1, "receiver") == ["ping"]

    def test_simulate_compute_charges_context(self, vm, anna):
        def busy(cloudburst):
            cloudburst.simulate_compute(25.0)
            return True

        anna.put_plain(function_key("busy"), busy)
        ctx = RequestContext()
        run(vm.threads[0], "busy", ctx=ctx)
        assert ctx.total("compute", "user_function") > 10.0

    def test_consistency_level_and_execution_id_exposed(self, vm, anna):
        def introspect(cloudburst):
            return cloudburst.consistency_level, cloudburst.execution_id

        anna.put_plain(function_key("introspect"), introspect)
        level, execution_id = run(vm.threads[0], "introspect",
                                  level=ConsistencyLevel.LWW)
        assert level == ConsistencyLevel.LWW
        assert isinstance(execution_id, str) and execution_id
