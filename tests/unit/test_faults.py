"""Unit tests for the fault plane's construction and seeded schedules.

The key property (a satellite of the fault-plane PR): every fault class draws
its schedule from its own ``rng.spawn("fault-plane/<class>")`` namespace, so
a seed pins each class's sample stream independently of which other classes
are enabled — the schedules replay sample-for-sample across processes.
"""

import pytest

from repro.sim import DEFAULT_FAULT_CLASSES, FaultEvent, FaultPlane, RandomSource


class _ClusterStub:
    """FaultPlane only touches the cluster when injecting; construction
    and schedule-drawing never do."""


def _plane(seed, **kwargs):
    return FaultPlane(_ClusterStub(), RandomSource(seed).spawn("fault-plane"),
                      **kwargs)


class TestConstruction:
    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            _plane(1, classes=("executor_kill", "power_outage"))

    def test_nonpositive_intervals_rejected(self):
        with pytest.raises(ValueError):
            _plane(1, mean_interval_ms=0.0)
        with pytest.raises(ValueError):
            _plane(1, downtime_ms=-1.0)
        with pytest.raises(ValueError):
            _plane(1, tick_interval_ms=0.0)

    def test_default_covers_all_four_tiers(self):
        assert set(DEFAULT_FAULT_CLASSES) == {
            "executor_kill", "storage_drop", "gossip_partition",
            "scheduler_crash"}
        assert set(_plane(1)._classes) == set(DEFAULT_FAULT_CLASSES)

    def test_recovery_bound_covers_downtime_plus_tick(self):
        plane = _plane(1, downtime_ms=100.0, tick_interval_ms=10.0)
        assert plane.recovery_bound_ms == 110.0


class TestPerClassSeededSchedules:
    def _draws(self, plane, name, count=8):
        return [plane._classes[name].rng.exponential(100.0)
                for _ in range(count)]

    def test_same_seed_replays_each_class_stream(self):
        first, second = _plane(13), _plane(13)
        for name in DEFAULT_FAULT_CLASSES:
            assert self._draws(first, name) == self._draws(second, name)

    def test_streams_differ_between_classes(self):
        plane = _plane(13)
        draws = {name: self._draws(plane, name)
                 for name in DEFAULT_FAULT_CLASSES}
        values = list(draws.values())
        assert all(a != b for i, a in enumerate(values)
                   for b in values[i + 1:])

    def test_class_stream_independent_of_enabled_set(self):
        # Disabling other classes must not shift a class's samples: the
        # namespace, not the draw order across classes, owns the stream.
        alone = _plane(13, classes=("scheduler_crash",))
        together = _plane(13)
        assert self._draws(alone, "scheduler_crash") == \
            self._draws(together, "scheduler_crash")

    def test_different_seed_differs(self):
        assert self._draws(_plane(13), "executor_kill") != \
            self._draws(_plane(14), "executor_kill")


class TestReporting:
    def test_empty_snapshot_shape(self):
        plane = _plane(5)
        snapshot = plane.snapshot()
        assert snapshot["injected"] == snapshot["recovered"] == 0
        assert snapshot["max_recovery_ms"] == 0.0
        assert set(snapshot["classes"]) == set(DEFAULT_FAULT_CLASSES)
        assert snapshot["timeline"] == []
        assert plane.timeline_signature() == ()

    def test_fault_event_to_dict(self):
        event = FaultEvent(12.5, "executor_kill", "inject", "vm-3")
        assert event.to_dict() == {"at_ms": 12.5, "fault": "executor_kill",
                                   "action": "inject", "target": "vm-3"}

    def test_double_attach_rejected(self):
        from repro.sim import Engine

        plane = _plane(5)
        engine = Engine()
        plane.attach(engine)
        with pytest.raises(RuntimeError):
            plane.attach(engine)
        plane.detach()
        plane.attach(engine)  # re-attach after detach is fine
        plane.detach()
