"""Unit tests for the consistent-hash ring."""

import pytest

from repro.anna import HashRing, stable_hash


class TestStableHash:
    def test_is_deterministic(self):
        assert stable_hash("key") == stable_hash("key")

    def test_differs_between_keys(self):
        assert stable_hash("key-1") != stable_hash("key-2")


class TestHashRingMembership:
    def test_rejects_nonpositive_virtual_nodes(self):
        with pytest.raises(ValueError):
            HashRing(virtual_nodes=0)

    def test_add_and_contains(self):
        ring = HashRing()
        ring.add_node("n1")
        assert "n1" in ring
        assert len(ring) == 1
        assert ring.nodes == ["n1"]

    def test_duplicate_add_raises(self):
        ring = HashRing()
        ring.add_node("n1")
        with pytest.raises(ValueError):
            ring.add_node("n1")

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            HashRing().remove_node("ghost")

    def test_remove_restores_empty_ring(self):
        ring = HashRing()
        ring.add_node("n1")
        ring.remove_node("n1")
        assert len(ring) == 0
        with pytest.raises(ValueError):
            ring.owners("key")


class TestHashRingPlacement:
    def setup_method(self):
        self.ring = HashRing(virtual_nodes=64)
        for index in range(4):
            self.ring.add_node(f"node-{index}")

    def test_owner_is_deterministic(self):
        assert self.ring.primary("some-key") == self.ring.primary("some-key")

    def test_owners_are_distinct(self):
        owners = self.ring.owners("some-key", count=3)
        assert len(owners) == len(set(owners)) == 3

    def test_owner_count_capped_at_membership(self):
        assert len(self.ring.owners("k", count=10)) == 4

    def test_keys_spread_across_nodes(self):
        keys = [f"key-{i}" for i in range(2_000)]
        counts = self.ring.assignment_counts(keys)
        assert len(counts) == 4
        assert min(counts.values()) > 200

    def test_node_addition_moves_limited_keys(self):
        keys = [f"key-{i}" for i in range(1_000)]
        before = {key: self.ring.primary(key) for key in keys}
        self.ring.add_node("node-new")
        moved = sum(1 for key in keys if self.ring.primary(key) != before[key])
        # Consistent hashing: roughly 1/5 of keys move to the new node, and
        # keys that move must move to the new node only.
        assert moved < 500
        for key in keys:
            if self.ring.primary(key) != before[key]:
                assert self.ring.primary(key) == "node-new"

    def test_node_removal_reassigns_only_its_keys(self):
        keys = [f"key-{i}" for i in range(1_000)]
        before = {key: self.ring.primary(key) for key in keys}
        self.ring.remove_node("node-0")
        for key in keys:
            if before[key] != "node-0":
                assert self.ring.primary(key) == before[key]
            else:
                assert self.ring.primary(key) != "node-0"


class TestOwnedBy:
    def setup_method(self):
        self.ring = HashRing(virtual_nodes=64)
        for index in range(4):
            self.ring.add_node(f"node-{index}")
        self.keys = [f"key-{i}" for i in range(500)]

    def test_matches_owner_computation(self):
        for node in (f"node-{i}" for i in range(4)):
            owned = set(self.ring.owned_by(self.keys, node, count=2))
            expected = {key for key in self.keys
                        if node in self.ring.owners(key, 2)}
            assert owned == expected

    def test_every_key_owned_by_exactly_replication_factor_nodes(self):
        total = sum(len(self.ring.owned_by(self.keys, f"node-{i}", count=2))
                    for i in range(4))
        assert total == 2 * len(self.keys)

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            self.ring.owned_by(self.keys, "ghost")
