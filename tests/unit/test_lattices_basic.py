"""Unit tests for the scalar, set and map lattices plus size estimation."""

import numpy as np
import pytest

from repro.errors import LatticeTypeError
from repro.lattices import (
    BoolOrLattice,
    LWWLattice,
    MapLattice,
    MaxIntLattice,
    MinIntLattice,
    OrderedSetLattice,
    SetLattice,
    Timestamp,
    TimestampGenerator,
    estimate_size,
)


class TestTimestamp:
    def test_ordering_by_clock_then_node(self):
        assert Timestamp(1.0, "a") < Timestamp(2.0, "a")
        assert Timestamp(1.0, "a") < Timestamp(1.0, "b")
        assert Timestamp(1.0, "a", 0) < Timestamp(1.0, "a", 1)

    def test_generator_is_strictly_increasing_even_at_same_clock(self):
        generator = TimestampGenerator("node")
        first = generator.next(5.0)
        second = generator.next(5.0)
        assert second > first


class TestLWWLattice:
    def test_merge_keeps_newer_value(self):
        old = LWWLattice(Timestamp(1.0, "a"), "old")
        new = LWWLattice(Timestamp(2.0, "a"), "new")
        assert old.merge(new).reveal() == "new"
        assert new.merge(old).reveal() == "new"

    def test_merge_is_idempotent(self):
        value = LWWLattice(Timestamp(1.0, "a"), 10)
        assert value.merge(value).reveal() == 10

    def test_merge_type_mismatch_raises(self):
        with pytest.raises(LatticeTypeError):
            LWWLattice(Timestamp(1.0, "a"), 1).merge(MaxIntLattice(1))

    def test_size_includes_timestamp_overhead(self):
        value = LWWLattice(Timestamp(1.0, "a"), b"xxxx")
        assert value.size_bytes() == 8 + 4


class TestScalarLattices:
    def test_max_int_merge(self):
        assert MaxIntLattice(3).merge(MaxIntLattice(7)).reveal() == 7

    def test_max_int_increment_is_functional(self):
        start = MaxIntLattice(1)
        assert start.increment(2).reveal() == 3
        assert start.reveal() == 1

    def test_max_int_increment_rejects_negative(self):
        with pytest.raises(ValueError):
            MaxIntLattice(1).increment(-1)

    def test_min_int_merge(self):
        assert MinIntLattice(3).merge(MinIntLattice(7)).reveal() == 3

    def test_bool_or_merge(self):
        assert BoolOrLattice(False).merge(BoolOrLattice(True)).reveal() is True
        assert BoolOrLattice(False).merge(BoolOrLattice(False)).reveal() is False


class TestSetLattice:
    def test_merge_is_union(self):
        merged = SetLattice({1, 2}).merge(SetLattice({2, 3}))
        assert merged.reveal() == frozenset({1, 2, 3})

    def test_add_is_functional(self):
        base = SetLattice({1})
        assert 2 in base.add(2)
        assert 2 not in base

    def test_len_and_iter(self):
        lattice = SetLattice({1, 2, 3})
        assert len(lattice) == 3
        assert sorted(lattice) == [1, 2, 3]


class TestOrderedSetLattice:
    def test_reveal_is_sorted(self):
        merged = OrderedSetLattice([3, 1]).merge(OrderedSetLattice([2]))
        assert merged.reveal() == [1, 2, 3]

    def test_contains(self):
        assert 5 in OrderedSetLattice([5])


class TestMapLattice:
    def test_values_must_be_lattices(self):
        with pytest.raises(LatticeTypeError):
            MapLattice({"k": 42})

    def test_merge_merges_values_per_key(self):
        a = MapLattice({"x": MaxIntLattice(1), "y": MaxIntLattice(9)})
        b = MapLattice({"x": MaxIntLattice(5)})
        merged = a.merge(b)
        assert merged.reveal() == {"x": 5, "y": 9}

    def test_insert_merges_existing_key(self):
        base = MapLattice({"x": MaxIntLattice(4)})
        updated = base.insert("x", MaxIntLattice(2))
        assert updated.reveal()["x"] == 4

    def test_contains_and_len(self):
        lattice = MapLattice({"x": MaxIntLattice(1)})
        assert "x" in lattice
        assert len(lattice) == 1


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(7) == 8
        assert estimate_size(1.5) == 8
        assert estimate_size("abcd") == 4
        assert estimate_size(b"abcd") == 4

    def test_containers_sum_elements(self):
        assert estimate_size([1, 2, 3]) == 8 + 24
        assert estimate_size({"a": 1}) == 8 + 1 + 8

    def test_numpy_uses_nbytes(self):
        array = np.zeros(100, dtype=np.float64)
        assert estimate_size(array) == 800

    def test_unknown_objects_get_constant(self):
        class Opaque:
            pass

        assert estimate_size(Opaque()) == 64
