"""Unit tests for direct executor-to-executor messaging."""

import pytest

from repro.anna import AnnaCluster
from repro.cloudburst import MessageRouter
from repro.cloudburst.messaging import inbox_key
from repro.errors import MessagingError
from repro.sim import LatencyModel, RequestContext


@pytest.fixture
def anna():
    return AnnaCluster(node_count=2, latency_model=LatencyModel(jitter_enabled=False))


@pytest.fixture
def router(anna):
    router = MessageRouter(anna)
    router.register_thread("t1")
    router.register_thread("t2")
    return router


class TestRegistration:
    def test_register_returns_deterministic_address(self, router):
        address = router.register_thread("t3")
        assert address == router.address_of("t3")
        assert router.is_registered("t3")

    def test_unregister(self, router):
        router.unregister_thread("t2")
        assert not router.is_registered("t2")

    def test_recv_from_unknown_thread_raises(self, router):
        with pytest.raises(MessagingError):
            router.recv("ghost")


class TestDirectPath:
    def test_send_recv_roundtrip(self, router):
        ctx = RequestContext()
        assert router.send("t1", "t2", {"hello": 1}, ctx)
        assert router.pending_count("t2") == 1
        messages = router.recv("t2", ctx)
        assert messages == [{"hello": 1}]
        assert router.pending_count("t2") == 0
        assert ctx.count("cloudburst", "direct_message") == 2

    def test_messages_delivered_in_order(self, router):
        for index in range(5):
            router.send("t1", "t2", index)
        assert router.recv("t2") == [0, 1, 2, 3, 4]

    def test_recv_with_no_messages_returns_empty(self, router):
        assert router.recv("t2") == []


class TestInboxFallback:
    def test_unreachable_recipient_uses_anna_inbox(self, router, anna):
        router.mark_unreachable("t2")
        ctx = RequestContext()
        delivered_directly = router.send("t1", "t2", "offline-msg", ctx)
        assert not delivered_directly
        assert anna.contains(inbox_key("t2"))
        # The fallback costs an Anna write rather than a TCP message.
        assert ctx.count("anna", "put") == 1

    def test_recv_drains_inbox_when_local_queue_empty(self, router):
        router.mark_unreachable("t2")
        router.send("t1", "t2", "first")
        router.send("t1", "t2", "second")
        router.mark_reachable("t2")
        assert router.recv("t2") == ["first", "second"]

    def test_inbox_messages_not_redelivered(self, router):
        router.mark_unreachable("t2")
        router.send("t1", "t2", "once")
        assert router.recv("t2") == ["once"]
        assert router.recv("t2") == []

    def test_unregistered_recipient_also_falls_back(self, router, anna):
        assert not router.send("t1", "t999", "to-nowhere")
        assert anna.contains(inbox_key("t999"))

    def test_mixed_backlog_merged_in_send_order(self, router):
        # Interleave direct and inbox-fallback deliveries: recv must merge
        # both sources into one sequence-ordered batch.
        router.send("t1", "t2", "direct-1")
        router.mark_unreachable("t2")
        router.send("t1", "t2", "inbox-2")
        router.mark_reachable("t2")
        router.send("t1", "t2", "direct-3")
        router.mark_unreachable("t2")
        router.send("t1", "t2", "inbox-4")
        router.mark_reachable("t2")
        assert router.recv("t2") == ["direct-1", "inbox-2", "direct-3", "inbox-4"]
        assert router.recv("t2") == []

    def test_inbox_not_reread_after_drain(self, router, anna):
        router.mark_unreachable("t2")
        router.send("t1", "t2", "offline")
        router.mark_reachable("t2")
        assert router.recv("t2") == ["offline"]
        # A later recv with direct traffic does not re-deliver inbox content.
        router.send("t1", "t2", "direct")
        assert router.recv("t2") == ["direct"]


class TestAddressMapping:
    def test_mapping_is_deterministic(self, router):
        assert router.address_of("worker-7") == router.address_of("worker-7")

    def test_different_threads_usually_differ(self, router):
        addresses = {router.address_of(f"thread-{i}") for i in range(50)}
        assert len(addresses) > 45
