"""Unit tests for the monitoring system and the Figure 7 autoscaling policy."""

import pytest

from repro import CloudburstCluster
from repro.cloudburst import AutoscalingPolicy, MonitoringConfig


class TestMonitoringSystem:
    def test_collect_metrics_shape(self):
        cluster = CloudburstCluster(executor_vms=2, seed=1)
        metrics = cluster.monitoring.collect_metrics()
        assert metrics["vm_count"] == 2
        assert metrics["thread_count"] == 6
        assert 0.0 <= metrics["utilization"] <= 1.0

    def test_scale_up_when_utilization_high(self):
        config = MonitoringConfig(vms_per_scale_up=2, max_vms=10)
        cluster = CloudburstCluster(executor_vms=2, seed=1, monitoring_config=config)
        for vm in cluster.vms:
            vm.inflight = len(vm.threads)
        cluster.publish_all_metrics()
        report = cluster.monitoring.tick()
        assert report.vms_added == 2
        assert len(cluster.vms) == 4

    def test_scale_down_when_idle(self):
        config = MonitoringConfig(vms_per_scale_up=1, min_vms=1)
        cluster = CloudburstCluster(executor_vms=3, seed=1, monitoring_config=config)
        cluster.publish_all_metrics()
        report = cluster.monitoring.tick()
        assert report.vms_removed == 1
        assert len(cluster.vms) == 2

    def test_scale_up_respects_max_vms(self):
        config = MonitoringConfig(vms_per_scale_up=5, max_vms=3)
        cluster = CloudburstCluster(executor_vms=3, seed=1, monitoring_config=config)
        for vm in cluster.vms:
            vm.inflight = len(vm.threads)
        cluster.publish_all_metrics()
        report = cluster.monitoring.tick()
        assert report.vms_added == 0

    def test_backlog_triggers_function_repinning(self):
        # Disable idle scale-down so the repinning decision is observed alone.
        config = MonitoringConfig(scale_down_utilization=0.0)
        cluster = CloudburstCluster(executor_vms=3, seed=1, monitoring_config=config)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda: 1, name="hot")
        scheduler.pin_function("hot", replicas=1)
        before = len(scheduler.function_pins["hot"])
        cluster.monitoring.tick(arrival_rate_per_s=100.0, completion_rate_per_s=10.0)
        assert len(scheduler.function_pins["hot"]) > before


class TestAutoscalingPolicy:
    def make_metrics(self, utilization, arrival=100.0, completion=100.0, capacity=180):
        return {
            "utilization": utilization,
            "arrival_rate_per_s": arrival,
            "completion_rate_per_s": completion,
            "capacity_threads": float(capacity),
            "queue_length": 0.0,
        }

    def test_scale_up_on_saturation(self):
        policy = AutoscalingPolicy(MonitoringConfig())
        decision = policy(5_000.0, self.make_metrics(1.0))
        assert decision is not None
        assert decision.add_threads == 60
        assert decision.add_delay_ms == pytest.approx(150_000.0)

    def test_no_second_scale_up_while_instances_boot(self):
        policy = AutoscalingPolicy(MonitoringConfig())
        assert policy(5_000.0, self.make_metrics(1.0)) is not None
        assert policy(10_000.0, self.make_metrics(1.0)) is None
        # After the startup delay elapses, another batch may be requested.
        assert policy(160_000.0, self.make_metrics(1.0)) is not None

    def test_drain_when_load_disappears(self):
        policy = AutoscalingPolicy(MonitoringConfig(min_pinned_threads=2))
        decision = policy(5_000.0, self.make_metrics(0.0, arrival=0.0, completion=0.0,
                                                     capacity=360))
        assert decision is not None
        assert decision.remove_threads == 358

    def test_modest_scale_down_at_low_utilization(self):
        policy = AutoscalingPolicy(MonitoringConfig())
        decision = policy(5_000.0, self.make_metrics(0.1, arrival=10.0, completion=10.0,
                                                     capacity=180))
        assert decision is not None
        assert decision.remove_threads == 3

    def test_steady_state_no_action(self):
        policy = AutoscalingPolicy(MonitoringConfig())
        assert policy(5_000.0, self.make_metrics(0.5)) is None
