"""Unit tests for the batched read plane (cache/Anna multi_get).

The charge-model contracts under test:

* hits and misses partition correctly, and a batch's misses overlap in
  virtual time — the caller pays ``(N-1) * dispatch + max(fetch latencies)``
  plus the ingress-bandwidth overflow, never the sum of the fetches;
* per-key queue/service charges still land on each storage node, so replica
  queues stay honest under overlap (redirect/overload semantics identical to
  the single-key path);
* a batch of one is byte-identical to the single-key path, and disabling
  ``batched_reads`` reproduces the sequential loop exactly;
* the causal-cut repair over a batch leaves the same locally-visible state
  the sequential per-key repair would have (hypothesis property test).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.anna import AnnaCluster, StorageServiceModel
from repro.cloudburst import ExecutorCache
from repro.errors import KeyNotFoundError
from repro.lattices import (
    CausalLattice,
    LWWLattice,
    Timestamp,
    VectorClock,
)
from repro.sim import Engine, LatencyModel, RequestContext, SimClock


def lww(value, clock=1.0, node="n"):
    return LWWLattice(Timestamp(clock, node), value)


def ctx_at(now_ms: float = 0.0) -> RequestContext:
    return RequestContext(clock=SimClock(now_ms))


def make_anna(**kwargs) -> AnnaCluster:
    kwargs.setdefault("node_count", 4)
    kwargs.setdefault("replication_factor", 2)
    kwargs.setdefault("latency_model", LatencyModel(jitter_enabled=False))
    return AnnaCluster(**kwargs)


def make_cache(anna=None, **kwargs) -> ExecutorCache:
    anna = anna or make_anna()
    return ExecutorCache("cache-a", anna, peer_registry={}, **kwargs)


class TestHitMissPartition:
    def test_hits_and_misses_partition(self):
        cache = make_cache()
        for key in ("a", "b", "c", "d"):
            cache.kvs.put(key, lww(key.upper()))
        cache.get_or_fetch("a")
        cache.get_or_fetch("b")
        hits_before = cache.stats.hits
        ctx = ctx_at()
        result = cache.multi_get(["a", "b", "c", "d", "ghost"], ctx)
        assert {k: v.reveal() if v else None for k, v in result.items()} == {
            "a": "A", "b": "B", "c": "C", "d": "D", "ghost": None}
        assert cache.stats.hits == hits_before + 2
        # Two misses fetched ("c", "d"), one not-found ("ghost") — all three
        # charged an anna round trip on some branch.
        assert ctx.count("anna", "get") == 3
        # Hits cost one batched IPC, not one cache.get per key; the two
        # fetched misses still pay their per-value IPC delivery (same body
        # as the single-key miss path).
        assert ctx.count("cache", "multi_get") == 1
        assert ctx.count("cache", "get") == 2
        for key in ("c", "d"):
            assert cache.contains(key)

    def test_duplicates_collapse(self):
        cache = make_cache()
        cache.kvs.put("k", lww("v"))
        ctx = ctx_at()
        result = cache.multi_get(["k", "k", "k"], ctx)
        assert list(result) == ["k"]
        assert ctx.count("anna", "get") == 1

    def test_missing_key_maps_to_none_and_charges_like_single(self):
        cache = make_cache()
        batched = ctx_at()
        assert cache.multi_get(["ghost"], batched) == {"ghost": None}
        single = ctx_at()
        with pytest.raises(KeyNotFoundError):
            cache.get_or_fetch("ghost", single)
        charge_log = lambda c: [(r.service, r.operation, r.latency_ms)
                                for r in c.charges]
        assert charge_log(batched) == charge_log(single)


class TestOverlapCharging:
    def test_batch_pays_max_not_sum(self):
        cache = make_cache()
        keys = [f"k{i}" for i in range(8)]
        for key in keys:
            cache.kvs.put(key, lww("v"))
        batched = ctx_at()
        cache.multi_get(list(keys), batched)

        sequential = ctx_at()
        fresh = make_cache()
        for key in keys:
            fresh.kvs.put(key, lww("v"))
        for key in keys:
            fresh.get_or_fetch(key, sequential)

        # Same per-key anna work on both paths...
        assert batched.count("anna", "get") == sequential.count("anna", "get")
        # ...but the batched caller's clock advances by roughly one fetch
        # plus dispatch, far below the sequential sum.
        assert batched.clock.now_ms < sequential.clock.now_ms / 2
        assert batched.count("anna", "multi_get_dispatch") == len(keys) - 1

    def test_ingress_overflow_charged_for_large_values(self):
        cache = make_cache()
        big = "x" * 500_000
        for key in ("a", "b", "c"):
            cache.kvs.put(key, lww(big))
        ctx = ctx_at()
        cache.multi_get(["a", "b", "c"], ctx)
        # Three ~0.5 MB responses into one NIC: two of them stream after the
        # slowest branch finishes, so the caller owes their transfer time.
        ingress = ctx.total("cache", "ingress")
        bandwidth = cache.latency_model.cost(
            "anna", "get").bandwidth_bytes_per_ms
        expected = 2 * cache.kvs.get("a").size_bytes() / bandwidth
        assert ingress == pytest.approx(expected, rel=0.01)

    def test_storage_queue_charges_land_under_overlap(self):
        # Two batch members on the same storage node serialize in its
        # reservation queue: the second fetch is charged a real queue wait
        # even though the batch overlaps in virtual time.
        anna = make_anna(node_count=1, replication_factor=1,
                         storage_service=StorageServiceModel(memory_base_ms=5.0))
        anna.put("a", lww("v"))
        anna.put("b", lww("v"))
        anna.attach_engine(Engine())
        cache = make_cache(anna)
        ctx = ctx_at()
        cache.multi_get(["a", "b"], ctx)
        # The second branch arrives one dispatch (0.03 ms) after the first
        # and waits out the remainder of its 5 ms service slot.
        assert ctx.total("anna", "queue") == pytest.approx(5.0 - 0.03, abs=0.05)
        assert ctx.total("anna", "service") == pytest.approx(10.0, abs=0.05)
        anna.detach_engine()

    def test_read_redirect_parity_with_single_key(self):
        # A saturated primary redirects batched reads exactly as it does
        # single-key reads.
        def build():
            anna = make_anna(node_count=3, replication_factor=2,
                             node_queue_bound=1,
                             storage_service=StorageServiceModel(
                                 memory_base_ms=5.0),
                             gossip_interval_ms=25.0)
            anna.put("k", lww("v"))
            anna.attach_engine(Engine())
            first, _ = anna.replicas_of("k")
            anna.node(first).work_queue.reserve(0.0, 5.0)
            return anna, first

        anna, first = build()
        cache = make_cache(anna)
        batched = ctx_at()
        cache.multi_get(["k"], batched)
        assert anna.node(first).read_redirects == 1
        assert batched.total("anna", "queue") == 0.0
        anna.detach_engine()

        anna, first = build()
        single = anna.get("k", ctx_at())
        assert anna.node(first).read_redirects == 1
        anna.detach_engine()


class TestBatchOfOneParity:
    def test_single_key_batch_matches_get_or_fetch(self):
        model = LatencyModel()  # jitter on: RNG draws must align too
        charge_logs = []
        for use_batch in (False, True):
            anna = AnnaCluster(node_count=4, replication_factor=2,
                               latency_model=LatencyModel())
            cache = ExecutorCache("cache-a", anna, peer_registry={})
            anna.put("k", lww("v"))
            ctx = ctx_at()
            if use_batch:
                assert cache.multi_get(["k"], ctx)["k"].reveal() == "v"
            else:
                assert cache.get_or_fetch("k", ctx).reveal() == "v"
            charge_logs.append([(r.service, r.operation, r.latency_ms)
                                for r in ctx.charges])
        assert charge_logs[0] == charge_logs[1]

    def test_knob_off_matches_sequential_loop(self):
        keys = [f"k{i}" for i in range(5)]
        charge_logs = []
        for batched in (False, None):  # None = hand-written loop
            anna = AnnaCluster(node_count=4, replication_factor=2,
                               latency_model=LatencyModel())
            cache = ExecutorCache("cache-a", anna, peer_registry={},
                                  batched_reads=batched if batched is not None
                                  else True)
            for key in keys:
                anna.put(key, lww("v"))
            ctx = ctx_at()
            if batched is False:
                cache.multi_get(list(keys) + ["ghost"], ctx)
            else:
                for key in keys:
                    cache.get_or_fetch(key, ctx)
                try:
                    cache.get_or_fetch("ghost", ctx)
                except KeyNotFoundError:
                    pass
            charge_logs.append([(r.service, r.operation, r.latency_ms)
                                for r in ctx.charges])
        assert charge_logs[0] == charge_logs[1]


class TestAnnaMultiGet:
    def test_multi_get_returns_values_and_none(self):
        anna = make_anna()
        anna.put("a", lww("A"))
        ctx = ctx_at()
        result = anna.multi_get(["a", "ghost"], ctx)
        assert result["a"].reveal() == "A"
        assert result["ghost"] is None
        assert ctx.count("anna", "get") == 2
        assert ctx.count("anna", "multi_get_dispatch") == 1

    def test_batch_of_one_matches_get_or_none(self):
        charge_logs = []
        for use_batch in (False, True):
            anna = AnnaCluster(node_count=4, replication_factor=2,
                               latency_model=LatencyModel())
            anna.put("a", lww("A"))
            ctx = ctx_at()
            if use_batch:
                anna.multi_get(["a"], ctx)
            else:
                anna.get_or_none("a", ctx)
            charge_logs.append([(r.service, r.operation, r.latency_ms)
                                for r in ctx.charges])
        assert charge_logs[0] == charge_logs[1]


# -- causal-cut property test ------------------------------------------------------------

def _causal(value, clock_entries, deps=None):
    clock = VectorClock()
    for node, count in clock_entries.items():
        for _ in range(count):
            clock = clock.increment(node)
    return CausalLattice(clock, value, dependencies=deps or {})


@st.composite
def causal_stores(draw):
    """A small KVS of causally versioned keys with random dependency edges."""
    key_count = draw(st.integers(min_value=2, max_value=6))
    keys = [f"k{i}" for i in range(key_count)]
    lattices = {}
    for index, key in enumerate(keys):
        clock = {f"w{draw(st.integers(0, 2))}": draw(st.integers(1, 3))}
        deps = {}
        # Dependencies point only at earlier keys: the graph stays acyclic.
        for dep_key in keys[:index]:
            if draw(st.booleans()):
                dep_clock = VectorClock()
                for _ in range(draw(st.integers(1, 3))):
                    dep_clock = dep_clock.increment(f"w{draw(st.integers(0, 2))}")
                deps[dep_key] = dep_clock
        lattices[key] = _causal(f"v-{key}", clock, deps)
    batch = draw(st.lists(st.sampled_from(keys), min_size=1, max_size=6))
    return lattices, batch


class TestCausalCutProperty:
    @settings(max_examples=40, deadline=None)
    @given(causal_stores())
    def test_batched_cut_matches_sequential_cut(self, store):
        """After multi_get, the local causal state equals the sequential one.

        For every random store and batch: reading the batch through
        ``multi_get`` must leave the cache holding versions that satisfy the
        same causal cut as reading the keys one by one through the
        single-key path (get_or_fetch + ensure_causal_cut), and resolve the
        same dependency set.
        """
        lattices, batch = store

        def build(batched):
            anna = AnnaCluster(node_count=2, replication_factor=1,
                               latency_model=LatencyModel(jitter_enabled=False))
            for key, lattice in lattices.items():
                anna.put(key, lattice)
            return ExecutorCache("cache-a", anna, peer_registry={},
                                 batched_reads=batched)

        batched_cache = build(True)
        batched_cache.multi_get(batch, ctx_at())

        sequential_cache = build(False)
        for key in dict.fromkeys(batch):
            value = sequential_cache.get_or_fetch(key, ctx_at())
            sequential_cache.ensure_causal_cut(value, ctx_at())

        for key in dict.fromkeys(batch):
            expected = sequential_cache.get_local(key)
            got = batched_cache.get_local(key)
            assert got is not None
            assert got.vector_clock.dominates_or_equal(expected.vector_clock)
        # Both paths agree on what was resolvable.
        assert (batched_cache.stats.causal_deps_unresolved == 0) == \
            (sequential_cache.stats.causal_deps_unresolved == 0)
