"""Unit tests for the span exporters (JSON dump + Chrome trace events)."""

import json

from repro.obs import (
    Tracer,
    spans_to_json,
    to_chrome_trace,
    write_chrome_trace,
    write_span_dump,
)


def _sample_tracer():
    tracer = Tracer()
    root = tracer.start_trace("call", "client", 0.0, node="client-0")
    schedule = root.child("schedule", "scheduler", 1.0, node="scheduler-0")
    schedule.finish(2.0)
    invoke = root.child("invoke", "executor", 2.0, node="vm-0:1")
    invoke.annotate("function", "work").finish(7.0)
    root.finish(7.5)
    return tracer


class TestJsonDump:
    def test_spans_to_json_carries_causal_fields(self):
        records = spans_to_json(_sample_tracer())
        assert len(records) == 3
        root = records[0]
        assert root["parent_id"] is None
        children = [r for r in records if r["parent_id"] == root["span_id"]]
        assert {r["name"] for r in children} == {"schedule", "invoke"}

    def test_write_span_dump_round_trips(self, tmp_path):
        path = write_span_dump(tmp_path / "spans.json", _sample_tracer(),
                               meta={"source": "unit"})
        payload = json.loads(path.read_text())
        assert payload["meta"] == {"source": "unit"}
        assert len(payload["spans"]) == 3

    def test_accepts_raw_span_lists(self):
        tracer = _sample_tracer()
        assert spans_to_json(list(tracer.spans)) == spans_to_json(tracer)


class TestChromeTrace:
    def test_document_shape(self):
        document = to_chrome_trace(_sample_tracer())
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3
        # One process_name per tier, one thread_name per (tier, node).
        assert sum(1 for e in metadata if e["name"] == "process_name") == 3
        assert sum(1 for e in metadata if e["name"] == "thread_name") == 3
        assert {e["args"]["name"] for e in metadata
                if e["name"] == "process_name"} == \
            {"client", "scheduler", "executor"}

    def test_timestamps_are_microseconds(self):
        document = to_chrome_trace(_sample_tracer())
        schedule = next(e for e in document["traceEvents"]
                        if e.get("name") == "schedule" and e["ph"] == "X")
        assert schedule["ts"] == 1000.0  # 1 ms -> 1000 us
        assert schedule["dur"] == 1000.0

    def test_events_carry_causal_args(self):
        document = to_chrome_trace(_sample_tracer())
        invoke = next(e for e in document["traceEvents"]
                      if e.get("name") == "invoke" and e["ph"] == "X")
        assert invoke["args"]["parent_id"] is not None
        assert invoke["args"]["function"] == "work"

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _sample_tracer())
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]

    def test_links_rendered_as_strings(self):
        tracer = Tracer()
        first = tracer.start_trace("attempt", "scheduler", 0.0).finish(1.0)
        retry = tracer.start_trace("attempt", "scheduler", 2.0)
        retry.link("retry_of", first.span_id).finish(3.0)
        document = to_chrome_trace(tracer)
        linked = next(e for e in document["traceEvents"]
                      if e["ph"] == "X" and "links" in e["args"])
        assert linked["args"]["links"] == [f"retry_of:{first.span_id}"]
