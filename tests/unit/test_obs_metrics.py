"""Unit tests for counters, gauges and the log-scale latency histogram."""

import pytest

from repro.obs import Counter, Gauge, LatencyHistogram, MetricsRegistry
from repro.sim import LatencyRecorder


class TestCounterAndGauge:
    def test_counter_monotonic(self):
        counter = Counter("requests")
        assert counter.inc() == 1.0
        assert counter.inc(2.5) == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = Gauge("queue_depth")
        assert gauge.set(4) == 4.0
        assert gauge.add(-1.5) == 2.5


class TestLatencyHistogram:
    def test_exact_count_sum_min_max(self):
        histogram = LatencyHistogram(label="t")
        samples = [0.5, 3.0, 3.0, 120.0, 0.02]
        histogram.extend(samples)
        assert histogram.count == len(samples)
        assert histogram.sum_ms == pytest.approx(sum(samples))
        assert histogram.min_ms == 0.02
        assert histogram.max_ms == 120.0
        assert histogram.mean_ms == pytest.approx(sum(samples) / len(samples))

    def test_percentiles_within_bucket_growth_error(self):
        # Uniform 1..1000 ms: each interpolated quantile must land within
        # the documented ~10% relative error of the exact value.
        histogram = LatencyHistogram(label="uniform")
        exact = [float(value) for value in range(1, 1001)]
        histogram.extend(exact)
        for pct, true_value in ((50, 500.5), (95, 950.05), (99, 990.01)):
            estimate = histogram.percentile(pct)
            assert estimate == pytest.approx(true_value, rel=0.10)

    def test_percentile_clamped_to_observed_range(self):
        histogram = LatencyHistogram(label="two")
        histogram.extend([10.0, 10.0, 10.0])
        # All mass in one bucket: interpolation cannot escape [min, max].
        for pct in (1, 50, 99):
            assert histogram.min_ms <= histogram.percentile(pct) <= \
                histogram.max_ms
        assert histogram.percentile(0) == 10.0
        assert histogram.percentile(100) == 10.0

    def test_overflow_bucket_reports_exact_max(self):
        histogram = LatencyHistogram(label="of", buckets=4)
        histogram.extend([0.005, 1e9])
        assert histogram.overflow == 1
        assert histogram.percentile(99) == 1e9

    def test_empty_histogram_is_safe(self):
        histogram = LatencyHistogram(label="empty")
        assert histogram.percentile(99) == 0.0
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p99_ms"] == 0.0

    def test_merge_requires_matching_geometry(self):
        left = LatencyHistogram(label="l")
        right = LatencyHistogram(label="r")
        left.extend([1.0, 2.0])
        right.extend([3.0])
        left.merge(right)
        assert left.count == 3
        assert left.max_ms == 3.0
        with pytest.raises(ValueError):
            left.merge(LatencyHistogram(label="odd", buckets=7))

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            LatencyHistogram(label="neg").record(-1.0)


class TestMetricsRegistry:
    def test_named_instruments_are_singletons(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_as_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency").record(5.0)
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"requests": 3.0}
        assert snapshot["gauges"] == {"depth": 2.0}
        assert snapshot["histograms"]["latency"]["count"] == 1


class TestHistogramBackedRecorder:
    """satellite (f): LatencyRecorder(keep_samples=False) drops sample lists."""

    def test_summary_matches_exact_within_bucket_error(self):
        samples = [float(value) for value in range(1, 501)]
        exact = LatencyRecorder(label="exact")
        compact = LatencyRecorder(label="compact", keep_samples=False)
        exact.extend(samples)
        compact.extend(samples)
        assert compact.samples_ms == []  # nothing retained
        assert len(compact) == len(exact)
        exact_summary, compact_summary = exact.summary(), compact.summary()
        assert compact_summary.count == exact_summary.count
        assert compact_summary.mean_ms == pytest.approx(exact_summary.mean_ms)
        assert compact_summary.min_ms == exact_summary.min_ms
        assert compact_summary.max_ms == exact_summary.max_ms
        for field in ("median_ms", "p95_ms", "p99_ms"):
            assert getattr(compact_summary, field) == pytest.approx(
                getattr(exact_summary, field), rel=0.10)

    def test_merge_refuses_histogram_backed(self):
        compact = LatencyRecorder(label="compact", keep_samples=False)
        compact.record(1.0)
        other = LatencyRecorder(label="exact")
        other.record(2.0)
        with pytest.raises(ValueError):
            compact.merge(other)
        with pytest.raises(ValueError):
            other.merge(compact)
