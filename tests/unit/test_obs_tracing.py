"""Unit tests for the tracing core: spans, sampling, tree queries."""

import pytest

from repro.obs import Tracer


class TestSpanBasics:
    def test_root_and_child_share_trace_id(self):
        tracer = Tracer()
        root = tracer.start_trace("call", "client", 0.0)
        child = root.child("schedule", "scheduler", 1.0, node="scheduler-0")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert child.node == "scheduler-0"

    def test_span_ids_are_deterministic_counters(self):
        first = Tracer()
        second = Tracer()
        for tracer in (first, second):
            root = tracer.start_trace("a", "client", 0.0)
            root.child("b", "scheduler", 1.0)
            tracer.start_trace("c", "client", 2.0)
        assert [s.span_id for s in first.spans] == \
            [s.span_id for s in second.spans]
        assert [s.trace_id for s in first.spans] == \
            [s.trace_id for s in second.spans]

    def test_finish_never_moves_time_backwards(self):
        tracer = Tracer()
        span = tracer.start_trace("a", "client", 10.0)
        span.finish(5.0)
        assert span.end_ms == 10.0
        assert span.duration_ms == 0.0

    def test_unfinished_span_has_zero_duration(self):
        tracer = Tracer()
        span = tracer.start_trace("a", "client", 10.0)
        assert not span.finished
        assert span.duration_ms == 0.0
        assert tracer.unfinished_spans() == [span]

    def test_annotate_and_link_are_chainable_and_lazy(self):
        tracer = Tracer()
        span = tracer.start_trace("a", "client", 0.0)
        assert span.attrs is None and span.links is None  # lazy allocation
        assert span.annotate("key", "k1").annotate("hit", True) is span
        assert span.link("retry_of", 17) is span
        record = span.to_dict()
        assert record["attrs"] == {"key": "k1", "hit": True}
        assert record["links"] == [{"relation": "retry_of", "span_id": 17}]

    def test_to_dict_omits_empty_attrs_and_links(self):
        tracer = Tracer()
        record = tracer.start_trace("a", "client", 0.0).finish(2.0).to_dict()
        assert "attrs" not in record and "links" not in record
        assert record["duration_ms"] == 2.0


class TestSampling:
    def test_rate_zero_creates_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.enabled
        for _ in range(100):
            assert tracer.start_trace("a", "client", 0.0) is None
        # Background spans honour the global off switch too.
        assert tracer.start_background("gossip", "anna", 0.0) is None
        assert len(tracer) == 0
        assert tracer.unsampled_requests == 100

    def test_rate_one_traces_everything(self):
        tracer = Tracer(sample_rate=1.0)
        spans = [tracer.start_trace("a", "client", 0.0) for _ in range(10)]
        assert all(span is not None for span in spans)
        assert tracer.unsampled_requests == 0

    def test_error_diffusion_is_exact_not_random(self):
        # 0.25 must trace exactly every fourth request, deterministically.
        tracer = Tracer(sample_rate=0.25)
        sampled = [tracer.start_trace("a", "client", 0.0) is not None
                   for _ in range(20)]
        assert sampled == ([False, False, False, True] * 5)

    def test_background_bypasses_request_sampling(self):
        tracer = Tracer(sample_rate=0.01)
        span = tracer.start_background("gossip", "anna", 5.0)
        assert span is not None
        assert span.attrs == {"background": True}
        # Background traces get their own trace ids.
        assert tracer.start_background("gossip", "anna", 6.0).trace_id != \
            span.trace_id

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestQueries:
    def _build(self):
        tracer = Tracer()
        root = tracer.start_trace("call", "client", 0.0)
        schedule = root.child("schedule", "scheduler", 1.0).finish(2.0)
        invoke = root.child("invoke", "executor", 2.0)
        invoke.child("kvs_service", "anna", 3.0).finish(4.0)
        invoke.finish(5.0)
        root.finish(5.0)
        return tracer, root, schedule, invoke

    def test_tree_queries(self):
        tracer, root, schedule, invoke = self._build()
        assert tracer.roots() == [root]
        assert tracer.orphan_spans() == []
        assert tracer.unfinished_spans() == []
        assert set(s.span_id for s in tracer.children_of(root)) == \
            {schedule.span_id, invoke.span_id}
        assert tracer.tiers(root.trace_id) == \
            ["client", "scheduler", "executor", "anna"]

    def test_span_tree_nests_children(self):
        tracer, root, _schedule, invoke = self._build()
        tree = tracer.span_tree(root.trace_id)
        assert len(tree) == 1
        assert tree[0]["span_id"] == root.span_id
        names = {child["name"] for child in tree[0]["children"]}
        assert names == {"schedule", "invoke"}
        invoke_node = next(child for child in tree[0]["children"]
                           if child["name"] == "invoke")
        assert invoke_node["children"][0]["name"] == "kvs_service"

    def test_breakdown_totals_by_tier_and_name(self):
        tracer, root, _schedule, _invoke = self._build()
        breakdown = tracer.breakdown(root.trace_id)
        assert breakdown[("scheduler", "schedule")] == 1.0
        assert breakdown[("executor", "invoke")] == 3.0
        assert breakdown[("anna", "kvs_service")] == 1.0

    def test_orphan_detection(self):
        tracer, root, _schedule, invoke = self._build()
        # Adopt only a child into a fresh tracer: its parent is now unknown.
        merged = Tracer()
        merged.extend([invoke])
        assert merged.orphan_spans() == [invoke]
        merged.extend([root])
        # invoke's parent is root, which is now present.
        assert [s.span_id for s in merged.orphan_spans()] == []

    def test_clear_keeps_id_counters_monotonic(self):
        tracer, root, _schedule, _invoke = self._build()
        highest = max(span.span_id for span in tracer.spans)
        tracer.clear()
        assert len(tracer) == 0
        fresh = tracer.start_trace("next", "client", 9.0)
        assert fresh.span_id > highest
        assert fresh.trace_id > root.trace_id
