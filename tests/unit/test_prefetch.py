"""Unit and end-to-end tests for scheduler-driven reference prefetching.

Contracts under test:

* a prefetch started at placement time warms the cache before the invoke
  arrives: the read pays at most the residual ``prefetch_wait``, never a
  foreground Anna round trip;
* prefetch is background traffic — it charges nothing at issue time and
  draws no RNG, and with an engine attached the landing is a background
  event that makes the entry visible at the modelled completion time;
* only the issuing execution pays residual waits: readers from other
  executions (whose clocks are not comparable) see entries as landed;
* never-read prefetches are counted as wasted by
  ``settle_prefetch_accounting``;
* the ``prefetch_references`` knob disables the whole plane — no issued
  fetches, no stats, and repeat runs stay deterministic.
"""

import pytest

from repro.anna import AnnaCluster
from repro.cloudburst import (
    CloudburstCluster,
    CloudburstReference,
    ExecutorCache,
)
from repro.lattices import LWWLattice, Timestamp
from repro.sim import Engine, LatencyModel, RequestContext, SimClock


def lww(value, clock=1.0, node="n"):
    return LWWLattice(Timestamp(clock, node), value)


def ctx_at(now_ms: float = 0.0, epoch=None) -> RequestContext:
    ctx = RequestContext(clock=SimClock(now_ms))
    if epoch is not None:
        ctx.metadata[ExecutorCache.PREFETCH_EPOCH_KEY] = epoch
    return ctx


def make_cache() -> ExecutorCache:
    anna = AnnaCluster(node_count=2, replication_factor=1,
                       latency_model=LatencyModel(jitter_enabled=False))
    return ExecutorCache("cache-a", anna, peer_registry={})


class TestPrefetchWarmsReads:
    def test_issue_charges_nothing_and_read_pays_residual_only(self):
        cache = make_cache()
        cache.kvs.put("k", lww("v"))
        started = cache.prefetch(["k"], now_ms=0.0, epoch="e1")
        assert started == 1
        assert cache.stats.prefetches_issued == 1

        # The invoke arrives one executor hop later, before the modelled
        # completion: the read pays the residual wait, not an anna.get.
        ready_ms = cache.latency_model.cost("anna", "get").mean_ms(
            cache.kvs.peek("k").size_bytes())
        ctx = ctx_at(ready_ms / 2, epoch="e1")
        value = cache.get_or_fetch("k", ctx)
        assert value.reveal() == "v"
        assert ctx.count("anna", "get") == 0
        assert ctx.total("cache", "prefetch_wait") == \
            pytest.approx(ready_ms / 2, abs=1e-9)
        assert cache.stats.prefetch_hits == 1

    def test_read_after_completion_is_free(self):
        cache = make_cache()
        cache.kvs.put("k", lww("v"))
        cache.prefetch(["k"], now_ms=0.0, epoch="e1")
        ctx = ctx_at(10_000.0, epoch="e1")
        cache.get_or_fetch("k", ctx)
        assert ctx.total("cache", "prefetch_wait") == 0.0
        assert ctx.count("anna", "get") == 0

    def test_cross_epoch_reader_sees_entry_as_landed(self):
        # A different execution's clock is not comparable to the issuer's
        # readiness timestamp: it must never be charged a residual wait.
        cache = make_cache()
        cache.kvs.put("k", lww("v"))
        cache.prefetch(["k"], now_ms=500.0, epoch="e1")
        ctx = ctx_at(0.0, epoch="e2")
        cache.get_or_fetch("k", ctx)
        assert ctx.total("cache", "prefetch_wait") == 0.0
        assert cache.stats.prefetch_hits == 1

    def test_transfers_serialize_on_the_ingress_link(self):
        # Prefetch hides round trips, not bandwidth: N large values take
        # N transfer times to become ready, exactly like on-demand fetches.
        cache = make_cache()
        big = "x" * 1_000_000
        for key in ("a", "b", "c"):
            cache.kvs.put(key, lww(big))
        cache.prefetch(["a", "b", "c"], now_ms=0.0, epoch="e1")
        cost = cache.latency_model.cost("anna", "get")
        transfer = cost.mean_ms(cache.kvs.peek("a").size_bytes()) - cost.base_ms
        # Reading the *last* key right away pays ~3 serialized transfers.
        ctx = ctx_at(0.0, epoch="e1")
        cache.get_or_fetch("c", ctx)
        assert ctx.total("cache", "prefetch_wait") == \
            pytest.approx(2 * transfer + cost.mean_ms(
                cache.kvs.peek("c").size_bytes()), rel=0.01)

    def test_engine_lands_prefetch_as_background_event(self):
        cache = make_cache()
        cache.kvs.put("k", lww("v"))
        engine = Engine()
        cache.prefetch(["k"], now_ms=0.0, engine=engine, epoch="e1")
        assert not cache.contains("k")
        engine.run()
        assert cache.contains("k")
        # The landed entry still credits the prefetch on first read.
        cache.get_or_fetch("k", ctx_at(10_000.0))
        assert cache.stats.prefetch_hits == 1

    def test_missing_key_is_not_prefetched(self):
        cache = make_cache()
        assert cache.prefetch(["ghost"], now_ms=0.0, epoch="e1") == 0
        assert cache.stats.prefetches_issued == 0


class TestWastedAccounting:
    def test_unread_prefetches_count_as_wasted(self):
        cache = make_cache()
        for key in ("a", "b", "c"):
            cache.kvs.put(key, lww("v"))
        engine = Engine()
        cache.prefetch(["a", "b", "c"], now_ms=0.0, engine=engine, epoch="e1")
        engine.run()
        cache.get_or_fetch("a", ctx_at(10_000.0))  # one read, two wasted
        assert cache.settle_prefetch_accounting() == 2
        assert cache.stats.prefetch_hits == 1
        assert cache.stats.prefetch_wasted == 2
        # Settling is idempotent once the tracking sets are drained.
        assert cache.settle_prefetch_accounting() == 0

    def test_inflight_never_landed_counts_as_wasted(self):
        cache = make_cache()
        cache.kvs.put("k", lww("v"))
        cache.prefetch(["k"], now_ms=0.0, epoch="e1")  # no engine, never read
        assert cache.settle_prefetch_accounting() == 1
        assert cache.stats.prefetch_wasted == 1


def _reference_cluster(prefetch_references, seed=11):
    cluster = CloudburstCluster(executor_vms=2, threads_per_vm=2, seed=seed,
                                prefetch_references=prefetch_references)
    cloud = cluster.connect()
    cloud.put("ref-key", 41)

    def inc(cloudburst, ref):
        return ref + 1

    cloud.register(inc, name="inc")
    return cluster, cloud


class TestSchedulerDrivenPrefetch:
    def test_placement_warms_the_chosen_vm(self):
        cluster, cloud = _reference_cluster(prefetch_references=True)
        assert cloud.call("inc", [CloudburstReference("ref-key")]) \
            .result().value == 42
        stats = [vm.cache.stats for vm in cluster.vms]
        assert sum(s.prefetches_issued for s in stats) >= 1
        assert sum(s.prefetch_hits for s in stats) >= 1

    def test_knob_off_issues_nothing(self):
        cluster, cloud = _reference_cluster(prefetch_references=False)
        assert cloud.call("inc", [CloudburstReference("ref-key")]) \
            .result().value == 42
        stats = [vm.cache.stats for vm in cluster.vms]
        assert sum(s.prefetches_issued for s in stats) == 0
        assert sum(s.prefetch_hits for s in stats) == 0

    def test_knob_off_runs_are_deterministic(self):
        # Same seed, knob off, twice: byte-identical charge timelines.
        samples = []
        for _ in range(2):
            cluster, cloud = _reference_cluster(prefetch_references=False)
            ctx = RequestContext(clock=SimClock())
            cloud.call("inc", [CloudburstReference("ref-key")],
                       ctx=ctx).result()
            samples.append([(r.service, r.operation, r.latency_ms)
                            for r in ctx.charges])
        assert samples[0] == samples[1]

    def test_prefetch_speeds_up_reference_reads(self):
        latencies = {}
        for knob in (True, False):
            cluster, cloud = _reference_cluster(prefetch_references=knob)
            ctx = RequestContext(clock=SimClock())
            cloud.call("inc", [CloudburstReference("ref-key")],
                       ctx=ctx).result()
            latencies[knob] = ctx.clock.now_ms
        assert latencies[True] < latencies[False]
