"""Unit tests for the distributed session consistency protocols (§5.3)."""

import pytest

from repro.anna import AnnaCluster
from repro.cloudburst import ConsistencyLevel, ExecutorCache
from repro.cloudburst.consistency.protocols import (
    DistributedSessionCausalProtocol,
    LWWProtocol,
    MultiKeyCausalProtocol,
    ObservingProtocol,
    RepeatableReadProtocol,
    SessionState,
    make_protocol,
)
from repro.lattices import CausalLattice, LWWLattice, Timestamp, VectorClock
from repro.sim import LatencyModel, RequestContext


@pytest.fixture
def anna():
    return AnnaCluster(node_count=2, replication_factor=1,
                       latency_model=LatencyModel(jitter_enabled=False),
                       propagation_mode=AnnaCluster.PROPAGATE_PERIODIC)


@pytest.fixture
def peers():
    return {}


@pytest.fixture
def cache_a(anna, peers):
    return ExecutorCache("cache-a", anna, peer_registry=peers)


@pytest.fixture
def cache_b(anna, peers):
    return ExecutorCache("cache-b", anna, peer_registry=peers)


def lww(value, clock=1.0, node="writer"):
    return LWWLattice(Timestamp(clock, node), value)


def causal(value, clock_entries, deps=None):
    return CausalLattice(VectorClock(clock_entries), value, dependencies=deps)


class TestMakeProtocol:
    def test_every_level_has_a_protocol(self):
        for level in ConsistencyLevel:
            assert make_protocol(level).level == level


class TestLWWProtocol:
    def test_read_write_through_cache(self, anna, cache_a):
        protocol = LWWProtocol()
        state = SessionState.create(ConsistencyLevel.LWW)
        anna.put("k", lww("v"))
        assert protocol.read(cache_a, "k", None, state).reveal() == "v"
        protocol.write(cache_a, "k", lww("v2", clock=2.0), None, state)
        assert anna.get("k").reveal() == "v2"
        assert state.reads == 1 and state.writes == 1
        assert state.metadata_bytes() == 0


class TestRepeatableRead:
    def test_first_read_pins_snapshot(self, anna, cache_a):
        protocol = RepeatableReadProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        anna.put("k", lww("v1"))
        protocol.read(cache_a, "k", None, state)
        assert "k" in state.read_set
        assert cache_a.get_snapshot(state.execution_id, "k") is not None

    def test_downstream_mismatch_fetches_exact_version_from_upstream(
            self, anna, cache_a, cache_b):
        protocol = RepeatableReadProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        anna.put("k", lww("v1", clock=1.0))
        first = protocol.read(cache_a, "k", None, state)
        # A newer version lands in Anna and in cache-b before the downstream read.
        anna.put("k", lww("v2", clock=9.0))
        cache_b.get_or_fetch("k")
        ctx = RequestContext()
        second = protocol.read(cache_b, "k", ctx, state)
        assert second.reveal() == first.reveal() == "v1"
        assert state.upstream_fetches == 1
        assert ctx.count("cache", "fetch_from_upstream") == 1

    def test_matching_version_served_locally(self, anna, cache_a, cache_b):
        protocol = RepeatableReadProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        anna.put("k", lww("v1", clock=1.0))
        protocol.read(cache_a, "k", None, state)
        cache_b.get_or_fetch("k")  # same version everywhere
        protocol.read(cache_b, "k", None, state)
        assert state.upstream_fetches == 0

    def test_write_within_dag_visible_to_later_reads(self, anna, cache_a, cache_b):
        protocol = RepeatableReadProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        anna.put("k", lww("v1", clock=1.0))
        protocol.read(cache_a, "k", None, state)
        protocol.write(cache_a, "k", lww("updated", clock=2.0), None, state)
        later = protocol.read(cache_b, "k", None, state)
        assert later.reveal() == "updated"

    def test_finalize_evicts_snapshots(self, anna, cache_a, peers):
        protocol = RepeatableReadProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        anna.put("k", lww("v"))
        protocol.read(cache_a, "k", None, state)
        protocol.finalize(state, peers)
        assert cache_a.snapshot_count() == 0

    def test_metadata_bytes_positive_once_reads_exist(self, anna, cache_a):
        protocol = RepeatableReadProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        anna.put("k", lww("v"))
        protocol.read(cache_a, "k", None, state)
        assert state.metadata_bytes() > 0


class TestMultiKeyCausal:
    def test_read_maintains_causal_cut(self, anna, cache_a):
        protocol = MultiKeyCausalProtocol()
        state = SessionState.create(ConsistencyLevel.MULTI_KEY_CAUSAL)
        anna.put("dep", causal("dep-v", {"w": 1}))
        anna.put("k", causal("k-v", {"w": 2}, deps={"dep": VectorClock({"w": 1})}))
        protocol.read(cache_a, "k", None, state)
        assert cache_a.contains("dep")
        assert cache_a.violates_causal_cut() == []
        assert "dep" in state.dependencies


class TestDistributedSessionCausal:
    def test_dependency_forces_fresh_read_on_other_cache(self, anna, cache_a, cache_b):
        protocol = DistributedSessionCausalProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        # cache-b holds a stale version of "l".
        anna.put("l", causal("l-old", {"w": 1}))
        cache_b.get_or_fetch("l")
        # A newer l and a k that depends on it land in Anna.
        anna.put("l", causal("l-new", {"w": 2}))
        anna.put("k", causal("k-v", {"x": 1}, deps={"l": VectorClock({"w": 2})}))
        # Upstream function (cache-a) reads k, shipping the dependency on l@w:2.
        protocol.read(cache_a, "k", None, state)
        assert "l" in state.dependencies
        # Downstream function on cache-b must not read the stale l.
        value = protocol.read(cache_b, "l", None, state)
        clock = value.vector_clock
        assert clock.dominates_or_equal(VectorClock({"w": 2})) or \
            clock.concurrent_with(VectorClock({"w": 2}))
        assert value.reveal() == "l-new"

    def test_valid_local_version_served_without_fetch(self, anna, cache_a, cache_b):
        protocol = DistributedSessionCausalProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        anna.put("k", causal("v", {"w": 5}))
        protocol.read(cache_a, "k", None, state)
        cache_b.get_or_fetch("k")
        ctx = RequestContext()
        protocol.read(cache_b, "k", ctx, state)
        assert state.upstream_fetches == 0

    def test_writes_update_read_set_with_new_clock(self, anna, cache_a):
        protocol = DistributedSessionCausalProtocol()
        state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        anna.put("k", causal("v1", {"w": 1}))
        protocol.read(cache_a, "k", None, state)
        new_version = causal("v2", {"w": 1, "me": 1})
        protocol.write(cache_a, "k", new_version, None, state)
        assert state.read_set["k"].version.get("me") == 1

    def test_dsc_metadata_larger_than_rr(self, anna, cache_a):
        anna.put("dep", causal("d", {"w": 1}))
        anna.put("k", causal("v", {"w": 2}, deps={"dep": VectorClock({"w": 1})}))
        dsc_state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        DistributedSessionCausalProtocol().read(cache_a, "k", None, dsc_state)
        rr_state = SessionState.create(ConsistencyLevel.DISTRIBUTED_SESSION_RR)
        RepeatableReadProtocol().read(cache_a, "k", None, rr_state)
        assert dsc_state.metadata_bytes() > rr_state.metadata_bytes()


class TestObservingProtocol:
    def test_reports_reads_and_writes(self, anna, cache_a):
        events = []

        class Recorder:
            def observe_read(self, execution_id, cache_id, key, lattice):
                events.append(("read", cache_id, key))

            def observe_write(self, execution_id, cache_id, key, lattice):
                events.append(("write", cache_id, key))

        protocol = ObservingProtocol(LWWProtocol(), Recorder())
        state = SessionState.create(ConsistencyLevel.LWW)
        anna.put("k", lww("v"))
        protocol.read(cache_a, "k", None, state)
        protocol.write(cache_a, "k", lww("v2", clock=2.0), None, state)
        assert ("read", "cache-a", "k") in events
        assert ("write", "cache-a", "k") in events
        assert protocol.level == ConsistencyLevel.LWW
