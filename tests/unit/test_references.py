"""Unit tests for KVS references and futures."""

import pytest

from repro.cloudburst import CloudburstFuture, CloudburstReference, extract_references
from repro.errors import FutureTimeoutError


class TestCloudburstReference:
    def test_requires_key(self):
        with pytest.raises(ValueError):
            CloudburstReference("")

    def test_equality_and_hash(self):
        assert CloudburstReference("k") == CloudburstReference("k")
        assert CloudburstReference("k") != CloudburstReference("other")
        assert len({CloudburstReference("k"), CloudburstReference("k")}) == 1

    def test_repr_contains_key(self):
        assert "mykey" in repr(CloudburstReference("mykey"))


class TestExtractReferences:
    def test_finds_top_level_references(self):
        refs = extract_references([1, CloudburstReference("a"), "x"])
        assert [r.key for r in refs] == ["a"]

    def test_finds_nested_references(self):
        args = [
            [CloudburstReference("in-list")],
            {"key": CloudburstReference("in-dict")},
            (CloudburstReference("in-tuple"),),
        ]
        keys = {r.key for r in extract_references(args)}
        assert keys == {"in-list", "in-dict", "in-tuple"}

    def test_no_references(self):
        assert extract_references([1, "two", {"three": 3}]) == []


class TestCloudburstFuture:
    def test_resolves_when_backend_has_value(self):
        future = CloudburstFuture("result-key", lambda key: (True, 42))
        assert future.is_ready()
        assert future.get() == 42

    def test_pending_until_backend_ready(self):
        state = {"ready": False}

        def fetch(key):
            return (state["ready"], "done" if state["ready"] else None)

        future = CloudburstFuture("k", fetch)
        assert not future.is_ready()   # non-raising probe
        with pytest.raises(FutureTimeoutError):
            future.get()               # no backend to advance: raises at once
        state["ready"] = True
        assert future.get() == "done"

    def test_value_is_cached_after_resolution(self):
        calls = []

        def fetch(key):
            calls.append(key)
            return (True, 1)

        future = CloudburstFuture("k", fetch)
        assert future.get() == 1
        assert future.get() == 1
        assert len(calls) == 1

    def test_get_timeout_advances_through_the_backend_hook(self):
        # The advance hook is the engine pump; here a stub "engine" resolves
        # the future only when asked to make progress.
        def advance(future, timeout_ms):
            future._settle(value="pumped")

        future = CloudburstFuture("k", advance=advance)
        assert not future.done()
        assert future.get(timeout_ms=10.0) == "pumped"

    def test_failed_future_reraises_on_get_and_exposes_exception(self):
        future = CloudburstFuture("k")
        boom = RuntimeError("session failed")
        future._set_exception(boom)
        assert future.done()
        assert not future.is_ready()   # ready means a *value* is available
        assert future.exception() is boom
        with pytest.raises(RuntimeError):
            future.get()

    def test_done_callbacks_fire_at_resolution_and_immediately_after(self):
        future = CloudburstFuture("k")
        seen = []
        future.add_done_callback(lambda f: seen.append("first"))
        assert seen == []
        future._settle(value=1)
        assert seen == ["first"]
        future.add_done_callback(lambda f: seen.append("late"))
        assert seen == ["first", "late"]  # post-resolution subscriber runs now

    def test_result_requires_an_execution_payload(self):
        future = CloudburstFuture("k", lambda key: (True, 5))
        assert future.get() == 5
        with pytest.raises(ValueError):
            future.result()            # KVS-only future has no ExecutionResult

    def test_repr_shows_state(self):
        future = CloudburstFuture("k", lambda key: (True, 1))
        assert "pending" in repr(future)
        future.get()
        assert "ready" in repr(future)
        failed = CloudburstFuture("k2")
        failed._set_exception(ValueError("nope"))
        assert "failed" in repr(failed)
