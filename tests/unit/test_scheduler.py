"""Unit tests for the function scheduler (placement policy, registration)."""

import pytest

from repro import CloudburstCluster, CloudburstReference
from repro.cloudburst import Dag
from repro.errors import FunctionNotFoundError


@pytest.fixture
def cluster():
    return CloudburstCluster(executor_vms=3, threads_per_vm=2, seed=7)


@pytest.fixture
def scheduler(cluster):
    return cluster.schedulers[0]


class TestRegistration:
    def test_register_function_persists_to_anna(self, scheduler, cluster):
        scheduler.register_function(lambda x: x, name="identity")
        from repro.cloudburst.executor import FUNCTION_LIST_KEY, function_key

        assert cluster.kvs.contains(function_key("identity"))
        assert "identity" in cluster.kvs.get(FUNCTION_LIST_KEY).reveal()

    def test_register_dag_requires_functions(self, scheduler):
        with pytest.raises(FunctionNotFoundError):
            scheduler.register_dag(Dag.chain("d", ["ghost"]))

    def test_register_dag_pins_functions(self, scheduler):
        scheduler.register_function(lambda x: x + 1, name="inc")
        scheduler.register_dag(Dag.chain("d", ["inc"]))
        assert len(scheduler.function_pins["inc"]) >= 1
        pinned = scheduler.pinned_threads("inc")[0]
        assert pinned.has_function("inc")

    def test_pin_function_adds_replicas(self, scheduler):
        scheduler.register_function(lambda: 1, name="f")
        scheduler.pin_function("f", replicas=1)
        first = len(scheduler.function_pins["f"])
        scheduler.pin_function("f", replicas=3)
        assert len(scheduler.function_pins["f"]) >= max(first, 3)

    def test_dag_topology_persisted(self, scheduler, cluster):
        scheduler.register_function(lambda x: x, name="a")
        scheduler.register_function(lambda x: x, name="b")
        scheduler.register_dag(Dag.chain("pipeline", ["a", "b"]))
        topology = cluster.kvs.get_plain("__cloudburst_dags__/pipeline")
        assert topology["functions"] == ["a", "b"]
        assert topology["edges"] == [("a", "b")]

    def test_reregistration_refreshes_pinned_thread_copies(self, scheduler, cluster):
        scheduler.register_function(lambda x: x + 1, name="f")
        scheduler.register_dag(Dag.chain("f-dag", ["f"]))
        assert scheduler.call_dag("f-dag", {"f": [1]}).value == 2
        scheduler.register_function(lambda x: x + 50, name="f")
        # The pinned executor threads serve the new body, not the stale pin.
        assert scheduler.call_dag("f-dag", {"f": [1]}).value == 51
        for thread in scheduler.pinned_threads("f"):
            assert thread._function_cache["f"](1) == 51

    def test_delete_dag_is_idempotent_and_unpersists(self, scheduler, cluster):
        from repro.errors import DagDeletedError, DagNotFoundError

        scheduler.register_function(lambda x: x, name="a")
        scheduler.register_dag(Dag.chain("gone", ["a"]))
        assert scheduler.delete_dag("gone") is True
        assert scheduler.delete_dag("gone") is False  # already deleted: no-op
        assert not cluster.kvs.contains("__cloudburst_dags__/gone")
        with pytest.raises(DagDeletedError):
            scheduler.call_dag("gone")
        with pytest.raises(DagNotFoundError):
            scheduler.delete_dag("never-was")


class TestSingleFunctionCalls:
    def test_call_returns_value_and_latency(self, scheduler):
        scheduler.register_function(lambda x: x * x, name="square")
        result = scheduler.call("square", [6])
        assert result.value == 36
        assert result.latency_ms > 0
        assert result.retries == 0

    def test_store_in_kvs_returns_result_key(self, scheduler, cluster):
        scheduler.register_function(lambda x: x + 1, name="inc")
        result = scheduler.call("inc", [1], store_in_kvs=True)
        assert result.result_key is not None
        assert cluster.kvs.get_plain(result.result_key) == 2

    def test_call_statistics_recorded(self, scheduler):
        scheduler.register_function(lambda: None, name="noop")
        scheduler.call("noop")
        scheduler.call("noop")
        assert scheduler.stats.calls_per_function["noop"] == 2


class TestDagCalls:
    def test_linear_dag_passes_results_downstream(self, scheduler):
        scheduler.register_function(lambda x: x + 1, name="inc")
        scheduler.register_function(lambda x: x * x, name="square")
        scheduler.register_dag(Dag.chain("comp", ["inc", "square"]))
        result = scheduler.call_dag("comp", {"inc": [4]})
        assert result.value == 25

    def test_fan_out_dag_returns_all_sinks(self, scheduler):
        scheduler.register_function(lambda x: x, name="root")
        scheduler.register_function(lambda x: x + 1, name="left")
        scheduler.register_function(lambda x: x * 2, name="right")
        scheduler.register_dag(Dag("fan", ["root", "left", "right"],
                                   [("root", "left"), ("root", "right")]))
        result = scheduler.call_dag("fan", {"root": [10]})
        assert result.value == {"left": 11, "right": 20}

    def test_dag_call_counts_tracked(self, scheduler):
        scheduler.register_function(lambda x: x, name="f")
        scheduler.register_dag(Dag.chain("d", ["f"]))
        scheduler.call_dag("d", {"f": [1]})
        assert scheduler.stats.calls_per_dag["d"] == 1
        assert scheduler.dag_registry.call_count("d") == 1


class TestPlacementPolicy:
    def test_locality_prefers_cache_with_data(self, cluster, scheduler):
        client = cluster.connect()
        client.put("hot-data", [1, 2, 3])
        scheduler.register_function(lambda data: sum(data), name="summer")
        reference = CloudburstReference("hot-data")
        # First call caches the key somewhere; later calls should go back there.
        scheduler.call("summer", [reference])
        target_vm = next(vm for vm in cluster.vms if vm.cache.contains("hot-data"))
        for _ in range(5):
            scheduler.call("summer", [reference])
        assert cluster.cache_hit_rate() > 0.5
        assert scheduler.stats.locality_hits >= 1
        # The data should not have spread to every VM when one unsaturated
        # executor already holds it.
        holders = [vm for vm in cluster.vms if vm.cache.contains("hot-data")]
        assert target_vm in holders

    def test_locality_disabled_ignores_references(self, cluster, scheduler):
        client = cluster.connect()
        client.put("some-data", 1)
        scheduler.register_function(lambda x: x, name="reader")
        scheduler.locality_scheduling = False
        scheduler.call("reader", [CloudburstReference("some-data")])
        assert scheduler.stats.locality_hits == 0

    def test_overloaded_vm_is_avoided(self, cluster, scheduler):
        client = cluster.connect()
        client.put("k", 1)
        scheduler.register_function(lambda x: x, name="reader")
        reference = CloudburstReference("k")
        scheduler.call("reader", [reference])
        holder = next(vm for vm in cluster.vms if vm.cache.contains("k"))
        holder.inflight = len(holder.threads)  # saturate it
        result = scheduler.call("reader", [reference])
        chosen_vm_caches = [vm for vm in cluster.vms
                            if vm.cache.contains("k") and vm is not holder]
        # Backpressure: the request went elsewhere, replicating the hot key.
        assert chosen_vm_caches or result.value == 1

    def test_dead_vm_never_selected(self, cluster, scheduler):
        scheduler.register_function(lambda: "ok", name="f")
        cluster.fail_vm(cluster.vms[0].vm_id)
        for _ in range(5):
            assert scheduler.call("f").value == "ok"


class TestFaultHandling:
    def test_all_executors_dead_raises(self, cluster, scheduler):
        scheduler.register_function(lambda: 1, name="f")
        for vm in cluster.vms:
            vm.fail()
        with pytest.raises(Exception):
            scheduler.call("f")


class TestConstructorParameters:
    def test_overload_threshold_and_fault_timeout_are_parameters(self):
        cluster = CloudburstCluster(executor_vms=2, threads_per_vm=2, seed=3,
                                    overload_threshold=0.5,
                                    fault_timeout_ms=1_234.0)
        scheduler = cluster.schedulers[0]
        assert scheduler.overload_threshold == 0.5
        assert scheduler.fault_timeout_ms == 1_234.0

    def test_overload_threshold_zero_still_schedules(self):
        # Threshold 0 marks every executor saturated; the policy must fall
        # back to the full pool instead of failing.
        cluster = CloudburstCluster(executor_vms=2, threads_per_vm=2, seed=3,
                                    overload_threshold=0.0)
        scheduler = cluster.schedulers[0]
        scheduler.register_function(lambda x: x + 1, name="inc")
        for vm in cluster.vms:
            vm.inflight = len(vm.threads)
        assert scheduler.call("inc", [1]).value == 2

    def test_fault_timeout_charged_on_retry(self):
        from repro.errors import ExecutorFailedError
        from repro.sim import RequestContext

        cluster = CloudburstCluster(executor_vms=2, threads_per_vm=2, seed=3,
                                    fault_timeout_ms=777.0)
        scheduler = cluster.schedulers[0]

        def dying():
            raise ExecutorFailedError("t", "injected")

        scheduler.register_function(dying, name="dying")
        ctx = RequestContext()
        with pytest.raises(Exception):
            scheduler.call("dying", ctx=ctx)
        # Every retry waited the configured fault timeout.
        charges = ctx.charges_for("cloudburst", "fault_timeout")
        assert charges
        assert all(charge.latency_ms == 777.0 for charge in charges)


class TestPlacementPolicyPlugin:
    def test_custom_policy_routes_every_call(self, cluster, scheduler):
        from repro.cloudburst.policy import PlacementPolicy

        class FirstThreadPolicy(PlacementPolicy):
            uses_locality = True

            def pick(self, scheduler, threads, function_name, args,
                     restricted, now_ms):
                return min(threads, key=lambda t: t.thread_id)

        scheduler.placement_policy = FirstThreadPolicy()
        scheduler.register_function(lambda x: x, name="f")
        for i in range(5):
            scheduler.call("f", [i])
        first = min(cluster.vms[0].threads, key=lambda t: t.thread_id)
        assert first.invocation_count == 5

    def test_custom_policy_survives_redundant_locality_assignment(self, scheduler):
        from repro.cloudburst.policy import (
            PlacementPolicy,
            RandomPlacementPolicy,
        )

        class MyPolicy(PlacementPolicy):
            uses_locality = True

            def pick(self, scheduler, threads, function_name, args,
                     restricted, now_ms):
                return threads[0]

        scheduler.placement_policy = MyPolicy()
        # Assigning the mode the policy already has keeps the custom policy
        # (the ablation harness assigns locality_scheduling unconditionally).
        scheduler.locality_scheduling = True
        assert isinstance(scheduler.placement_policy, MyPolicy)
        # Actually switching modes installs the stock policy for that mode.
        scheduler.locality_scheduling = False
        assert isinstance(scheduler.placement_policy, RandomPlacementPolicy)
        assert scheduler.locality_scheduling is False
