"""Unit tests for lattice encapsulation of opaque user values."""


from repro.cloudburst import ConsistencyLevel, LatticeEncapsulator
from repro.lattices import CausalLattice, LWWLattice, MaxIntLattice, Timestamp, VectorClock


class TestLWWEncapsulation:
    def test_wraps_value_in_lww(self):
        enc = LatticeEncapsulator("node-1", ConsistencyLevel.LWW)
        lattice = enc.encapsulate({"a": 1}, clock_ms=10.0)
        assert isinstance(lattice, LWWLattice)
        assert lattice.reveal() == {"a": 1}
        assert lattice.timestamp.node_id == "node-1"

    def test_later_writes_get_larger_timestamps(self):
        enc = LatticeEncapsulator("node-1", ConsistencyLevel.LWW)
        first = enc.encapsulate(1, clock_ms=10.0)
        second = enc.encapsulate(2, clock_ms=10.0)
        assert second.timestamp > first.timestamp

    def test_existing_lattice_passes_through(self):
        enc = LatticeEncapsulator("node-1", ConsistencyLevel.LWW)
        existing = MaxIntLattice(3)
        assert enc.encapsulate(existing) is existing

    def test_de_encapsulate(self):
        enc = LatticeEncapsulator("node-1", ConsistencyLevel.LWW)
        assert LatticeEncapsulator.de_encapsulate(enc.encapsulate("x")) == "x"


class TestCausalEncapsulation:
    def test_wraps_value_in_causal_lattice(self):
        enc = LatticeEncapsulator("thread-1", ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        lattice = enc.encapsulate("v")
        assert isinstance(lattice, CausalLattice)
        assert lattice.vector_clock.get("thread-1") == 1

    def test_prior_version_extends_clock(self):
        enc = LatticeEncapsulator("thread-1", ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        first = enc.encapsulate("v1")
        second = enc.encapsulate("v2", prior=first)
        assert second.vector_clock.dominates(first.vector_clock)

    def test_dependencies_recorded_only_for_tracking_levels(self):
        deps = {"other": VectorClock({"w": 1})}
        dsc = LatticeEncapsulator("t", ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        sk = LatticeEncapsulator("t", ConsistencyLevel.SINGLE_KEY_CAUSAL)
        assert dsc.encapsulate("v", dependencies=deps).dependencies == deps
        assert sk.encapsulate("v", dependencies=deps).dependencies == {}

    def test_write_dominates_sessions_own_observation_of_the_key(self):
        # Regression: a session that read k on another cache has no local
        # prior; the new version still must causally *follow* the version the
        # session observed (shipped in ``dependencies[key]``), not sit
        # concurrent with it — otherwise the write carries self-contradictory
        # metadata ("depends on a version it does not dominate").
        enc = LatticeEncapsulator("writer-0", ConsistencyLevel.DISTRIBUTED_SESSION_CAUSAL)
        observed = VectorClock({"seed": 1})
        lattice = enc.encapsulate("v", prior=None,
                                  dependencies={"k": observed,
                                                "other": VectorClock({"w": 2})},
                                  key="k")
        assert lattice.vector_clock.dominates(observed)
        # A version does not depend on itself; cross-key deps survive.
        assert "k" not in lattice.dependencies
        assert lattice.dependencies == {"other": VectorClock({"w": 2})}

    def test_concurrent_versions_helper(self):
        enc = LatticeEncapsulator("a", ConsistencyLevel.MULTI_KEY_CAUSAL)
        lattice = enc.encapsulate("v")
        assert LatticeEncapsulator.concurrent_versions(lattice) == ("v",)
        assert LatticeEncapsulator.concurrent_versions(
            LWWLattice(Timestamp(1.0, "n"), "x")) == ("x",)


class TestVersionOf:
    def test_lww_version_is_timestamp(self):
        lattice = LWWLattice(Timestamp(3.0, "n"), "v")
        assert LatticeEncapsulator.version_of(lattice) == lattice.timestamp

    def test_causal_version_is_vector_clock(self):
        lattice = CausalLattice(VectorClock({"a": 2}), "v")
        assert LatticeEncapsulator.version_of(lattice) == VectorClock({"a": 2})

    def test_other_lattices_have_no_version(self):
        assert LatticeEncapsulator.version_of(MaxIntLattice(1)) is None
