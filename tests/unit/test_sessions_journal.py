"""Unit tests for the session journal (§4.5 durable DAG-session state).

The journal is the explicit, serializable home of what used to be closure
state inside the scheduler's engine-DAG path: per-attempt status, placements,
resource holdings, retry budget.  These tests pin its transition semantics
and the JSON round-trip the CI fault artifact depends on.
"""

import json

import pytest

from repro.cloudburst import ConsistencyLevel
from repro.cloudburst.consistency.protocols import SessionState
from repro.cloudburst.sessions import (
    ATTEMPT_ABANDONED,
    ATTEMPT_COMPLETED,
    ATTEMPT_FAILED,
    ATTEMPT_IN_FLIGHT,
    FUNCTION_COMPLETED,
    FUNCTION_SCHEDULED,
    SESSION_COMPLETED,
    SESSION_FAILED,
    SESSION_RUNNING,
    SessionJournal,
)


def _open(journal, name="dag-a", session=None):
    return journal.open(dag_name=name, function_args={"f": [1, 2]},
                        level=ConsistencyLevel.LWW, store_in_kvs=False,
                        start_ms=10.0, session=session or object())


class TestLifecycle:
    def test_open_assigns_scoped_sequential_ids(self):
        journal = SessionJournal("scheduler-3")
        first, second = _open(journal), _open(journal)
        assert first.session_id == "scheduler-3/session-0"
        assert second.session_id == "scheduler-3/session-1"
        assert first.status == SESSION_RUNNING
        assert journal.in_flight_count() == 2

    def test_attempt_transitions(self):
        journal = SessionJournal("s")
        record = _open(journal)
        attempt = journal.begin_attempt(record, "exec-1", at_ms=10.0)
        assert attempt.status == ATTEMPT_IN_FLIGHT
        journal.record_scheduled(record, "f")
        assert attempt.function_status["f"] == FUNCTION_SCHEDULED
        state = SessionState.create(ConsistencyLevel.LWW)
        state.caches_involved.add("cache-1")
        journal.record_completed(record, "f", finish_ms=22.5,
                                 thread_id="vm-0:t1", vm_id="vm-0", state=state)
        assert attempt.function_status["f"] == FUNCTION_COMPLETED
        assert attempt.finish_ms["f"] == 22.5
        assert attempt.placements["f"] == "vm-0:t1"
        assert attempt.vms_used == ["vm-0"]
        assert attempt.caches_involved == ["cache-1"]
        assert record.uses_vm("vm-0") and not record.uses_vm("vm-9")

    def test_failure_retry_and_close(self):
        journal = SessionJournal("s")
        record = _open(journal)
        journal.begin_attempt(record, "exec-1", at_ms=10.0)
        journal.record_attempt_failure(record, "executor died")
        assert record.current_attempt().status == ATTEMPT_FAILED
        assert record.current_attempt().failure == "executor died"
        assert journal.record_retry(record) == 1
        journal.begin_attempt(record, "exec-2", at_ms=40.0)
        journal.close(record, SESSION_COMPLETED)
        assert record.status == SESSION_COMPLETED
        assert record.current_attempt().status == ATTEMPT_COMPLETED
        assert journal.in_flight_count() == 0
        # Failed attempts keep their failed status in the history.
        assert record.attempts[0].status == ATTEMPT_FAILED

    def test_crash_recovery_transitions(self):
        journal = SessionJournal("s")
        session = object()
        record = _open(journal, session=session)
        journal.begin_attempt(record, "exec-1", at_ms=10.0)
        journal.record_attempt_failure(record, "scheduler crash",
                                       status=ATTEMPT_ABANDONED)
        journal.record_recovery(record)
        assert record.current_attempt().status == ATTEMPT_ABANDONED
        assert record.recoveries == 1
        assert journal.recovered_sessions == 1
        # Recovery does not burn the §4.5 retry budget.
        assert record.retries == 0
        # The session is still in flight (the restart resumes it).
        assert journal.live_sessions() == [session]

    def test_failed_close_removes_live_session(self):
        journal = SessionJournal("s")
        record = _open(journal)
        journal.close(record, SESSION_FAILED)
        assert journal.live_sessions() == []
        assert journal.counts()[SESSION_FAILED] == 1


class TestQueries:
    def test_counts_and_in_flight(self):
        journal = SessionJournal("s")
        a, b, c = _open(journal), _open(journal), _open(journal)
        journal.close(a, SESSION_COMPLETED)
        journal.close(b, SESSION_FAILED)
        counts = journal.counts()
        assert counts[SESSION_COMPLETED] == 1
        assert counts[SESSION_FAILED] == 1
        assert counts[SESSION_RUNNING] == 1
        assert journal.in_flight() == [c]

    def test_record_for_unknown_session_raises(self):
        journal = SessionJournal("s")
        with pytest.raises(KeyError):
            journal.record_for("s/session-99")


class TestSerialization:
    def test_to_dict_is_json_round_trippable(self):
        journal = SessionJournal("scheduler-0")
        record = _open(journal)
        journal.begin_attempt(record, "exec-1", at_ms=10.0)
        journal.record_scheduled(record, "f")
        state = SessionState.create(ConsistencyLevel.LWW)
        journal.record_completed(record, "f", 15.0, "vm-1:t0", "vm-1", state)
        journal.close(record, SESSION_COMPLETED)
        # Arbitrary user args must not leak into the dump — only their counts.
        _open(journal, name="dag-b", session=object())
        dump = json.loads(json.dumps(journal.to_dict()))
        assert dump["scheduler_id"] == "scheduler-0"
        assert dump["counts"]["completed"] == 1
        assert dump["counts"]["running"] == 1
        sessions = {entry["dag_name"]: entry for entry in dump["sessions"]}
        assert sessions["dag-a"]["attempts"][0]["placements"] == {"f": "vm-1:t0"}
        assert sessions["dag-a"]["function_arg_counts"] == {"f": 2}
        assert "function_args" not in sessions["dag-a"]
