"""Unit tests for the virtual clock and request context."""

import pytest

from repro.sim import RequestContext, SimClock


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now_ms == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(25.5).now_ms == 25.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_ms == pytest.approx(12.5)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_moves_forward_only(self):
        clock = SimClock(100.0)
        clock.advance_to(50.0)
        assert clock.now_ms == 100.0
        clock.advance_to(150.0)
        assert clock.now_ms == 150.0

    def test_copy_is_independent(self):
        clock = SimClock(5.0)
        other = clock.copy()
        other.advance(10.0)
        assert clock.now_ms == 5.0
        assert other.now_ms == 15.0


class TestRequestContext:
    def test_charge_advances_clock_and_records(self):
        ctx = RequestContext()
        ctx.charge("anna", "get", 1.5)
        ctx.charge("cache", "get", 0.2)
        assert ctx.clock.now_ms == pytest.approx(1.7)
        assert ctx.elapsed_ms == pytest.approx(1.7)
        assert len(ctx.charges) == 2

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            RequestContext().charge("anna", "get", -0.1)

    def test_charges_for_filters_by_service_and_operation(self):
        ctx = RequestContext()
        ctx.charge("anna", "get", 1.0)
        ctx.charge("anna", "put", 2.0)
        ctx.charge("cache", "get", 0.1)
        assert ctx.count("anna") == 2
        assert ctx.count("anna", "put") == 1
        assert ctx.total("anna") == pytest.approx(3.0)
        assert ctx.total("cache", "get") == pytest.approx(0.1)

    def test_breakdown_aggregates_by_service_operation(self):
        ctx = RequestContext()
        ctx.charge("anna", "get", 1.0)
        ctx.charge("anna", "get", 2.0)
        breakdown = ctx.breakdown()
        assert breakdown[("anna", "get")] == pytest.approx(3.0)

    def test_fork_shares_current_time_but_not_charges(self):
        ctx = RequestContext()
        ctx.charge("anna", "get", 5.0)
        branch = ctx.fork()
        assert branch.clock.now_ms == pytest.approx(5.0)
        assert branch.charges == []

    def test_join_advances_to_slowest_branch(self):
        ctx = RequestContext()
        ctx.charge("cloudburst", "schedule", 1.0)
        fast = ctx.fork()
        slow = ctx.fork()
        fast.charge("anna", "get", 1.0)
        slow.charge("anna", "get", 10.0)
        ctx.join([fast, slow])
        assert ctx.clock.now_ms == pytest.approx(11.0)
        # All branch charges are folded into the parent's log.
        assert ctx.count("anna", "get") == 2

    def test_join_with_no_branches_is_noop(self):
        ctx = RequestContext()
        ctx.charge("cloudburst", "schedule", 1.0)
        ctx.join([])
        assert ctx.clock.now_ms == pytest.approx(1.0)

    def test_elapsed_accumulator_matches_charge_log(self):
        ctx = RequestContext()
        for index in range(50):
            ctx.charge("anna", "get", 0.1 * index)
            # elapsed_ms is a running accumulator; it must agree with a
            # re-sum of the itemised log at every step.
            assert ctx.elapsed_ms == pytest.approx(
                sum(charge.latency_ms for charge in ctx.charges))

    def test_start_ms_is_first_charge_time(self):
        ctx = RequestContext(clock=SimClock(100.0))
        assert ctx.start_ms == 100.0  # no charges yet: current time
        ctx.clock.advance_to(120.0)
        ctx.charge("anna", "get", 5.0)
        ctx.charge("anna", "get", 5.0)
        assert ctx.start_ms == 120.0


class TestRecordChargesOptOut:
    """record_charges=False: same timing, no itemised log (parity-pinned)."""

    def test_timing_identical_log_empty(self):
        logged = RequestContext(clock=SimClock(10.0))
        unlogged = RequestContext(clock=SimClock(10.0), record_charges=False)
        for ctx in (logged, unlogged):
            ctx.charge("anna", "get", 1.5)
            ctx.charge("cache", "get", 0.25)
        assert unlogged.clock.now_ms == logged.clock.now_ms
        assert unlogged.elapsed_ms == logged.elapsed_ms
        assert unlogged.start_ms == logged.start_ms
        assert unlogged.charges == []
        assert unlogged.count("anna") == 0
        assert unlogged.total("anna") == 0.0
        assert unlogged.breakdown() == {}

    def test_negative_charge_still_rejected(self):
        ctx = RequestContext(record_charges=False)
        with pytest.raises(ValueError):
            ctx.charge("anna", "get", -0.1)

    def test_fork_propagates_opt_out(self):
        ctx = RequestContext(record_charges=False)
        ctx.charge("cloudburst", "schedule", 1.0)
        branch = ctx.fork()
        assert branch.record_charges is False
        branch.charge("anna", "get", 2.0)
        assert branch.charges == []

    def test_join_sums_unlogged_branch_elapsed(self):
        ctx = RequestContext(record_charges=False)
        ctx.charge("cloudburst", "schedule", 1.0)
        fast, slow = ctx.fork(), ctx.fork()
        fast.charge("anna", "get", 1.0)
        slow.charge("anna", "get", 10.0)
        ctx.join([fast, slow])
        assert ctx.clock.now_ms == pytest.approx(11.0)
        assert ctx.elapsed_ms == pytest.approx(12.0)
        assert ctx.charges == []
