"""Unit tests for the shared discrete-event engine and its queue primitives."""

import pytest

from repro.sim import (
    Engine,
    FifoQueue,
    ForkJoin,
    ProcessorSharingQueue,
    ReservationQueue,
    WorkQueue,
)


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.at(5.0, lambda: fired.append("b"))
        engine.at(1.0, lambda: fired.append("a"))
        engine.at(9.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now_ms == 9.0

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        fired = []
        for name in ("first", "second", "third"):
            engine.at(4.0, lambda n=name: fired.append(n))
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_schedule_is_relative_to_now(self):
        engine = Engine()
        times = []
        engine.at(10.0, lambda: engine.schedule(5.0, lambda: times.append(engine.now_ms)))
        engine.run()
        assert times == [15.0]

    def test_past_timestamps_clamp_to_now(self):
        engine = Engine()
        times = []
        engine.at(10.0, lambda: engine.at(3.0, lambda: times.append(engine.now_ms)))
        engine.run()
        assert times == [10.0]

    def test_cancelled_events_do_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.at(1.0, lambda: fired.append("no"))
        engine.at(0.5, lambda: engine.cancel(event))
        engine.run()
        assert fired == []

    def test_run_until_leaves_later_events_queued(self):
        engine = Engine()
        fired = []
        engine.at(1.0, lambda: fired.append(1))
        engine.at(50.0, lambda: fired.append(50))
        engine.run(until_ms=10.0)
        assert fired == [1]
        assert engine.now_ms == 10.0
        assert engine.pending == 1

    def test_stop_halts_processing(self):
        engine = Engine()
        fired = []
        engine.at(1.0, lambda: (fired.append(1), engine.stop()))
        engine.at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_events_scheduled_while_running(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1.0, lambda: chain(n + 1))

        engine.at(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now_ms == 3.0


class TestPendingCounters:
    """The O(1) pending/foreground_pending counters (no heap scans)."""

    def test_counters_track_schedule_cancel_fire(self):
        engine = Engine()
        assert engine.pending == 0
        assert engine.foreground_pending == 0
        fg = engine.at(1.0, lambda: None)
        bg = engine.at(2.0, lambda: None, background=True)
        assert engine.pending == 2
        assert engine.foreground_pending == 1
        engine.cancel(bg)
        assert engine.pending == 1
        assert engine.foreground_pending == 1
        engine.step()  # fires fg
        assert engine.pending == 0
        assert engine.foreground_pending == 0
        # Cancelling after the fact must not drive the counters negative.
        engine.cancel(fg)
        engine.cancel(bg)
        assert engine.pending == 0
        assert engine.foreground_pending == 0

    def test_double_cancel_counts_once(self):
        engine = Engine()
        event = engine.at(1.0, lambda: None)
        engine.cancel(event)
        engine.cancel(event)
        assert engine.pending == 0

    def test_counters_agree_with_heap_contents(self):
        engine = Engine()
        events = [engine.at(float(i), lambda: None, background=(i % 3 == 0))
                  for i in range(30)]
        for event in events[::2]:
            engine.cancel(event)
        live = [entry[2] for entry in engine._heap if not entry[2].cancelled]
        assert engine.pending == len(live)
        assert engine.foreground_pending == sum(
            1 for event in live if not event.background)

    def test_tombstone_compaction_bounds_heap(self):
        engine = Engine()
        keeper = engine.at(1e9, lambda: None)
        # Far more cancellations than the compaction threshold: the heap must
        # not retain one tombstone per cancelled event.
        for _ in range(5):
            events = [engine.at(float(i), lambda: None) for i in range(400)]
            for event in events:
                engine.cancel(event)
        assert engine.pending == 1
        assert len(engine._heap) < 1200
        engine.run()
        assert keeper.fn is None  # still fired despite the churn

    def test_mid_run_compaction_keeps_run_loop_live(self):
        # Regression: cancel()'s tombstone compaction used to rebind
        # self._heap to a new list while run() held a cached alias, so a
        # callback cancelling >_TOMBSTONE_COMPACT_MIN events stranded the
        # running loop on the stale heap (later events never fired, counters
        # went negative, and the next run() crashed on already-fired entries).
        engine = Engine()
        fired = []
        victims = [engine.at(10.0 + i, lambda: fired.append("victim"))
                   for i in range(700)]

        def cancel_all():
            for event in victims:
                engine.cancel(event)
            # Scheduled after compaction: must land on the live heap.
            engine.schedule(1.0, lambda: fired.append("after"))

        engine.at(1.0, cancel_all)
        engine.at(2000.0, lambda: fired.append("tail"))
        engine.run()
        assert fired == ["after", "tail"]
        assert engine.pending == 0
        assert engine._tombstones == 0
        # A second run on the same engine must also work.
        engine.at(3000.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["after", "tail", "second"]

    def test_peek_ms_skips_cancelled_head(self):
        engine = Engine()
        early = engine.at(1.0, lambda: None)
        engine.at(5.0, lambda: None)
        engine.cancel(early)
        assert engine.peek_ms() == 5.0
        engine.run()
        assert engine.peek_ms() is None

    def test_run_max_events_stops_early(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.at(float(i), lambda i=i: fired.append(i))
        assert engine.run(max_events=2) == 2
        assert fired == [0, 1]
        assert engine.pending == 3


class TestRecurringEvent:
    def test_pauses_on_idle_engine_without_horizon(self):
        engine = Engine()
        fired = []
        engine.every(10.0, lambda: fired.append(engine.now_ms))
        engine.run()
        # Nothing else queued: the tick fires once and pauses itself.
        assert fired == [10.0]

    def test_horizon_keeps_ticking_on_idle_engine(self):
        engine = Engine()
        fired = []
        engine.every(10.0, lambda: fired.append(engine.now_ms), horizon_ms=55.0)
        engine.run()
        # Control-plane ticks must outlive the foreground workload (to see
        # the end of a burst), but never beyond the horizon.
        assert fired == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_horizon_tick_still_cancellable(self):
        engine = Engine()
        fired = []
        recurring = engine.every(10.0, lambda: fired.append(engine.now_ms),
                                 horizon_ms=100.0)
        engine.at(25.0, recurring.cancel)
        engine.run()
        assert fired == [10.0, 20.0]


class TestWorkQueue:
    def test_admit_when_idle_starts_immediately(self):
        queue = WorkQueue()
        assert queue.admit(10.0) == 10.0
        queue.release(25.0)
        assert queue.next_free_ms == 25.0
        assert queue.busy_ms == 15.0

    def test_fifo_wait_behind_earlier_work(self):
        queue = WorkQueue()
        queue.admit(0.0)
        queue.release(40.0)
        start = queue.admit(10.0)
        assert start == 40.0
        queue.release(55.0)
        assert queue.completed == 2

    def test_depth_counts_in_service_and_future(self):
        queue = WorkQueue()
        queue.admit(0.0)
        queue.release(10.0)
        queue.admit(0.0)  # reserved [10, ...)
        assert queue.depth(5.0) == 2
        queue.release(20.0)
        assert queue.depth(5.0) == 2
        assert queue.depth(15.0) == 1
        assert queue.depth(25.0) == 0

    def test_bound_and_is_full(self):
        queue = WorkQueue(bound=2)
        queue.admit(0.0)
        queue.release(10.0)
        queue.admit(0.0)
        queue.release(20.0)
        assert queue.is_full(5.0)
        assert not queue.is_full(15.0)

    def test_reentrant_admit_rejected(self):
        queue = WorkQueue()
        queue.admit(0.0)
        with pytest.raises(RuntimeError):
            queue.admit(1.0)

    def test_release_without_admit_rejected(self):
        with pytest.raises(RuntimeError):
            WorkQueue().release(1.0)

    def test_busy_between_overlap(self):
        queue = WorkQueue()
        queue.admit(0.0)
        queue.release(10.0)
        queue.admit(20.0)
        queue.release(30.0)
        assert queue.busy_between(0.0, 30.0) == 20.0
        assert queue.busy_between(5.0, 25.0) == 10.0
        assert queue.busy_between(12.0, 18.0) == 0.0

    def test_reset_clears_reservations(self):
        queue = WorkQueue()
        queue.admit(0.0)
        queue.release(10.0)
        queue.reset()
        assert queue.next_free_ms == 0.0
        assert queue.depth(0.0) == 0
        assert queue.admit(0.0) == 0.0


class TestReservationQueue:
    def test_idle_server_starts_immediately(self):
        queue = ReservationQueue()
        assert queue.reserve(10.0, 5.0) == 10.0
        assert queue.busy_ms == 5.0
        assert queue.completed == 1

    def test_contending_arrivals_queue_fifo(self):
        queue = ReservationQueue()
        assert queue.reserve(0.0, 10.0) == 0.0
        assert queue.reserve(5.0, 10.0) == 10.0
        assert queue.reserve(5.0, 10.0) == 20.0

    def test_out_of_order_arrival_backfills_idle_gap(self):
        # The property WorkQueue lacks: an operation arriving at an *earlier*
        # virtual time than an existing reservation slots into the idle gap
        # instead of waiting behind the later reservation's tail.
        queue = ReservationQueue()
        assert queue.reserve(100.0, 5.0) == 100.0
        assert queue.reserve(0.0, 5.0) == 0.0
        assert queue.busy_ms == 10.0
        # A gap too small for the service is skipped, not squeezed into.
        assert queue.reserve(97.0, 5.0) == 105.0

    def test_gap_between_reservations_is_used_when_large_enough(self):
        queue = ReservationQueue()
        queue.reserve(0.0, 10.0)      # [0, 10)
        queue.reserve(50.0, 10.0)     # [50, 60)
        assert queue.reserve(20.0, 10.0) == 20.0   # fits in [10, 50)
        assert queue.reserve(15.0, 30.0) == 60.0   # does not fit anywhere earlier

    def test_zero_service_never_occupies(self):
        queue = ReservationQueue(bound=1)
        assert queue.reserve(5.0, 0.0) == 5.0
        assert queue.depth(5.0) == 0
        assert not queue.is_full(5.0)

    def test_depth_and_bound(self):
        queue = ReservationQueue(bound=2)
        queue.reserve(0.0, 10.0)
        queue.reserve(0.0, 10.0)
        assert queue.depth(5.0) == 2
        assert queue.is_full(5.0)
        assert not queue.is_full(25.0)

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            ReservationQueue(bound=0)

    def test_reset_clears_reservations(self):
        queue = ReservationQueue()
        queue.reserve(0.0, 10.0)
        queue.reset()
        assert queue.depth(0.0) == 0
        assert queue.busy_ms == 0.0
        assert queue.reserve(0.0, 5.0) == 0.0

    def test_busy_at_tracks_last_reservation(self):
        queue = ReservationQueue()
        assert not queue.busy_at(0.0)
        queue.reserve(0.0, 10.0)
        assert queue.busy_at(5.0)
        assert not queue.busy_at(10.0)

    def test_history_is_compacted_but_totals_survive(self):
        queue = ReservationQueue()
        total = ReservationQueue._COMPACT_LIMIT + 10
        for index in range(total):
            queue.reserve(index * 10.0, 1.0)
        assert len(queue._starts) <= ReservationQueue._COMPACT_LIMIT
        assert queue.completed == total
        assert queue.busy_ms == float(total)
        # Recent contention still queues correctly after compaction.
        last_start = (total - 1) * 10.0
        assert queue.reserve(last_start, 1.0) == last_start + 1.0


class TestFifoQueue:
    def test_parallel_servers(self):
        queue = FifoQueue(servers=2)
        assert queue.reserve(0.0, 10.0) == (0.0, 10.0)
        assert queue.reserve(0.0, 10.0) == (0.0, 10.0)
        # Third arrival waits for the earliest-free server.
        assert queue.reserve(0.0, 10.0) == (10.0, 20.0)

    def test_busy_servers_and_utilization(self):
        queue = FifoQueue(servers=4)
        queue.reserve(0.0, 10.0)
        queue.reserve(0.0, 20.0)
        assert queue.busy_servers(5.0) == 2
        assert queue.utilization(5.0) == 0.5
        assert queue.busy_servers(15.0) == 1

    def test_capacity_changes(self):
        queue = FifoQueue(servers=1)
        queue.reserve(0.0, 10.0)
        queue.set_servers(2, now_ms=0.0)
        assert queue.reserve(0.0, 10.0) == (0.0, 10.0)
        queue.set_servers(1, now_ms=10.0)
        assert queue.servers == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FifoQueue(servers=0)
        with pytest.raises(ValueError):
            FifoQueue(servers=1).reserve(0.0, -1.0)

    def test_selection_matches_min_scan(self):
        # The (free_at, index) heap must pick exactly the server a min() scan
        # over all servers would have picked (including the lower-index tie
        # break), or capacity sweeps stop being replayable.
        import random

        rng = random.Random(7)
        heap_queue = FifoQueue(servers=5)
        free_at = [0.0] * 5
        for step in range(300):
            arrival = step * 0.7
            service = rng.choice([0.0, 1.0, 3.5, 12.0])
            index = min(range(len(free_at)), key=lambda i: (free_at[i], i))
            expected_start = max(arrival, free_at[index])
            free_at[index] = expected_start + service
            assert heap_queue.reserve(arrival, service) == (
                expected_start, expected_start + service)

    def test_shrink_drops_latest_free_servers(self):
        queue = FifoQueue(servers=3)
        queue.reserve(0.0, 10.0)   # server busy until 10
        queue.reserve(0.0, 50.0)   # server busy until 50
        queue.set_servers(2, now_ms=0.0)
        # The latest-free server (busy until 50) was dropped: the two
        # remaining free up at 0 and 10.
        assert queue.reserve(0.0, 1.0) == (0.0, 1.0)
        assert queue.reserve(0.0, 1.0) == (1.0, 2.0)

    def test_grow_then_reserve_uses_new_server(self):
        queue = FifoQueue(servers=1)
        queue.reserve(0.0, 100.0)
        queue.set_servers(3, now_ms=20.0)
        assert queue.servers == 3
        # New servers become free at now_ms, not at 0.
        assert queue.reserve(5.0, 1.0) == (20.0, 21.0)


class TestProcessorSharingQueue:
    def test_lone_job_runs_at_full_speed(self):
        queue = ProcessorSharingQueue()
        assert queue.reserve(0.0, 10.0) == (0.0, 10.0)

    def test_concurrency_stretches_service(self):
        queue = ProcessorSharingQueue()
        queue.reserve(0.0, 100.0)
        start, end = queue.reserve(0.0, 10.0)
        assert start == 0.0
        assert end == 20.0  # two sharers -> half speed

    def test_capacity_absorbs_sharers(self):
        queue = ProcessorSharingQueue(capacity=2.0)
        queue.reserve(0.0, 100.0)
        _, end = queue.reserve(0.0, 10.0)
        assert end == 10.0  # 2 sharers over capacity 2 -> full speed

    def test_end_history_is_compacted(self):
        queue = ProcessorSharingQueue()
        total = ProcessorSharingQueue._COMPACT_LIMIT + 10
        for index in range(total):
            queue.reserve(index * 10.0, 1.0)  # never overlapping
        assert len(queue._ends) <= ProcessorSharingQueue._COMPACT_LIMIT
        # Recent overlap is still counted after compaction.
        last_arrival = (total - 1) * 10.0
        _, end = queue.reserve(last_arrival + 0.5, 10.0)
        assert end == last_arrival + 0.5 + 20.0  # shares with the last job

    def test_compaction_never_drops_active_jobs(self):
        # Compaction drops only expired end times (end <= arrival), so jobs
        # still running always survive — sharer counts stay exact no matter
        # how long the queue runs.
        queue = ProcessorSharingQueue(capacity=1e12)  # no stretch blow-up
        limit = ProcessorSharingQueue._COMPACT_LIMIT
        for index in range(limit + 100):
            queue.reserve(float(index), 1e6)  # all still active at the end
        assert queue.active_at(float(limit + 100)) == limit + 100


class TestForkJoin:
    def test_diamond_join_at_slowest_branch(self):
        fork_join = ForkJoin(base_ms=100.0)
        assert fork_join.ready_at([]) == 100.0
        fork_join.complete("source", 110.0)
        assert fork_join.ready_at(["source"]) == 110.0
        fork_join.complete("left", 150.0)
        fork_join.complete("right", 130.0)
        assert fork_join.ready_at(["left", "right"]) == 150.0
        fork_join.complete("sink", 160.0)
        assert fork_join.join() == 160.0

    def test_unknown_dependency_raises(self):
        with pytest.raises(KeyError):
            ForkJoin().ready_at(["ghost"])

    def test_double_complete_raises(self):
        fork_join = ForkJoin()
        fork_join.complete("a", 1.0)
        with pytest.raises(ValueError):
            fork_join.complete("a", 2.0)

    def test_empty_join_is_base(self):
        assert ForkJoin(base_ms=7.0).join() == 7.0
