"""Unit tests for the latency model and its calibration constraints."""

import pytest

from repro.sim import ComputeModel, LatencyModel, OperationCost, RandomSource, RequestContext


class TestOperationCost:
    def test_mean_without_bandwidth_ignores_size(self):
        cost = OperationCost(5.0)
        assert cost.mean_ms(0) == 5.0
        assert cost.mean_ms(1_000_000) == 5.0

    def test_mean_with_bandwidth_adds_transfer_time(self):
        cost = OperationCost(1.0, bandwidth_bytes_per_ms=1_000.0)
        assert cost.mean_ms(5_000) == pytest.approx(6.0)


class TestLatencyModel:
    def test_unknown_operation_raises(self):
        with pytest.raises(KeyError):
            LatencyModel().cost("nosuch", "op")

    def test_sample_without_jitter_equals_mean(self):
        model = LatencyModel(jitter_enabled=False)
        assert model.sample_ms("lambda", "invoke") == \
               model.cost("lambda", "invoke").base_ms

    def test_sample_with_jitter_varies_but_stays_positive(self):
        model = LatencyModel(RandomSource(1))
        samples = [model.sample_ms("lambda", "invoke") for _ in range(200)]
        assert len(set(samples)) > 1
        assert all(s > 0 for s in samples)

    def test_charge_applies_to_context(self):
        model = LatencyModel(jitter_enabled=False)
        ctx = RequestContext()
        charged = model.charge(ctx, "anna", "get", size_bytes=190_000)
        assert ctx.clock.now_ms == pytest.approx(charged)
        assert ctx.count("anna", "get") == 1

    def test_override_changes_cost(self):
        model = LatencyModel(jitter_enabled=False)
        model.override("anna", "get", OperationCost(42.0))
        assert model.sample_ms("anna", "get") == 42.0

    def test_same_seed_reproducible(self):
        a = LatencyModel(RandomSource(9))
        b = LatencyModel(RandomSource(9))
        assert [a.sample_ms("s3", "get") for _ in range(10)] == \
               [b.sample_ms("s3", "get") for _ in range(10)]


class TestCalibrationShape:
    """The relative calibration the paper's figures depend on."""

    def setup_method(self):
        self.model = LatencyModel(jitter_enabled=False)

    def test_cache_ipc_is_much_cheaper_than_anna(self):
        assert self.model.sample_ms("cache", "get") * 5 < self.model.sample_ms("anna", "get")

    def test_anna_is_much_cheaper_than_lambda_invocation(self):
        assert self.model.sample_ms("anna", "get") * 5 < self.model.sample_ms("lambda", "invoke")

    def test_dynamodb_cheaper_than_s3(self):
        assert self.model.sample_ms("dynamodb", "put") < self.model.sample_ms("s3", "put")

    def test_redis_cheaper_than_dynamodb(self):
        assert self.model.sample_ms("redis", "get") < self.model.sample_ms("dynamodb", "get")

    def test_step_functions_transition_dwarfs_lambda_invoke(self):
        assert self.model.sample_ms("stepfunctions", "transition") > \
               5 * self.model.sample_ms("lambda", "invoke")

    def test_ec2_startup_is_minutes(self):
        assert self.model.sample_ms("ec2", "instance_startup") >= 60_000


class TestComputeModel:
    def test_array_sum_scales_with_elements(self):
        compute = ComputeModel(rng=RandomSource(1))
        small = compute.array_sum_ms(1_000)
        large = compute.array_sum_ms(1_000_000)
        assert large > small * 100

    def test_zero_elements_costs_nothing(self):
        assert ComputeModel().array_sum_ms(0) == 0.0

    def test_fixed_cost_close_to_requested(self):
        compute = ComputeModel(rng=RandomSource(2))
        samples = [compute.fixed_ms(50.0) for _ in range(100)]
        median = sorted(samples)[50]
        assert 45.0 < median < 56.0

    def test_fixed_zero_is_zero(self):
        assert ComputeModel().fixed_ms(0.0) == 0.0
