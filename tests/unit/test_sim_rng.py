"""Unit tests for the seeded random source and the Zipfian generator."""

import pytest

from repro.sim import RandomSource, ZipfGenerator


class TestRandomSource:
    def test_same_seed_same_sequence(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.randint(0, 100) for _ in range(10)] == \
               [b.randint(0, 100) for _ in range(10)]

    def test_different_seed_different_sequence(self):
        a = [RandomSource(1).randint(0, 1_000_000) for _ in range(5)]
        b = [RandomSource(2).randint(0, 1_000_000) for _ in range(5)]
        assert a != b

    def test_spawn_is_deterministic_and_independent(self):
        parent = RandomSource(3)
        child1 = parent.spawn("zipf")
        child2 = RandomSource(3).spawn("zipf")
        assert [child1.random() for _ in range(5)] == [child2.random() for _ in range(5)]

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomSource(0).choice([])

    def test_choice_returns_member(self):
        rng = RandomSource(0)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items

    def test_shuffle_returns_permutation_without_mutating(self):
        rng = RandomSource(5)
        items = list(range(20))
        shuffled = rng.shuffle(items)
        assert items == list(range(20))
        assert sorted(shuffled) == items

    def test_lognormal_positive_and_centered(self):
        rng = RandomSource(11)
        samples = [rng.lognormal(10.0, 0.2) for _ in range(500)]
        assert all(s > 0 for s in samples)
        assert 8.0 < sorted(samples)[len(samples) // 2] < 12.5

    def test_lognormal_rejects_nonpositive_median(self):
        with pytest.raises(ValueError):
            RandomSource(0).lognormal(0.0, 0.1)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            RandomSource(0).exponential(0.0)


class TestZipfGenerator:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, coefficient=-1.0)

    def test_draws_within_range(self):
        zipf = ZipfGenerator(100, 1.0, RandomSource(1))
        draws = zipf.draw(1_000)
        assert all(0 <= d < 100 for d in draws)

    def test_skew_favours_low_ranks(self):
        zipf = ZipfGenerator(1_000, 1.0, RandomSource(2))
        draws = zipf.draw(5_000)
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 500)
        assert head > tail

    def test_higher_coefficient_is_more_skewed(self):
        flat = ZipfGenerator(1_000, 0.5, RandomSource(3)).draw(3_000)
        steep = ZipfGenerator(1_000, 1.5, RandomSource(3)).draw(3_000)
        head_flat = sum(1 for d in flat if d == 0)
        head_steep = sum(1 for d in steep if d == 0)
        assert head_steep > head_flat

    def test_zero_coefficient_is_roughly_uniform(self):
        zipf = ZipfGenerator(10, 0.0, RandomSource(4))
        draws = zipf.draw(10_000)
        counts = [draws.count(i) for i in range(10)]
        assert min(counts) > 500

    def test_next_key_uses_prefix(self):
        zipf = ZipfGenerator(10, 1.0, RandomSource(5))
        key = zipf.next_key("mykey")
        assert key.startswith("mykey-")
