"""Unit tests for latency statistics helpers."""

import pytest

from repro.sim import LatencyRecorder, format_table, mean, median, percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_single_value(self):
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 100) == 42.0

    def test_median_of_odd_list(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_of_even_list_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == pytest.approx(2.5)

    def test_p99_near_max(self):
        values = list(range(1, 101))
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_percentiles_are_monotonic(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        pcts = [percentile(values, p) for p in (0, 25, 50, 75, 100)]
        assert pcts == sorted(pcts)

    def test_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_mean_value(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


class TestLatencyRecorder:
    def test_record_and_summary(self):
        recorder = LatencyRecorder(label="x")
        recorder.extend([1.0, 2.0, 3.0, 4.0, 100.0])
        summary = recorder.summary()
        assert summary.count == 5
        assert summary.median_ms == 3.0
        assert summary.min_ms == 1.0
        assert summary.max_ms == 100.0
        assert summary.p99_ms > summary.median_ms

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_summary_of_empty_recorder_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder(label="empty").summary()

    def test_merge_combines_samples(self):
        a = LatencyRecorder(label="a")
        a.extend([1.0, 2.0])
        b = LatencyRecorder(label="b")
        b.extend([3.0])
        merged = a.merge(b)
        assert len(merged) == 3
        assert merged.label == "a"

    def test_summary_as_dict_and_str(self):
        recorder = LatencyRecorder(label="fmt")
        recorder.extend([1.0, 2.0, 3.0])
        summary = recorder.summary()
        assert set(summary.as_dict()) >= {"median_ms", "p99_ms", "count"}
        assert "fmt" in str(summary)


class TestFormatTable:
    def test_renders_headers_rows_and_title(self):
        text = format_table(["a", "bb"], [[1, 2], [3, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_column_widths_accommodate_long_values(self):
        text = format_table(["col"], [["averyverylongvalue"]])
        assert "averyverylongvalue" in text
