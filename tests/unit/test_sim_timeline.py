"""Unit tests for the discrete-event closed-loop queueing simulation."""

import pytest

from repro.sim import (
    AutoscalerDecision,
    ClientGroup,
    ClosedLoopSimulation,
    run_fixed_capacity,
)


def constant_service(ms):
    return lambda now: ms


class TestClosedLoopSimulation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ClosedLoopSimulation(constant_service(10), 0, [ClientGroup(1)])

    def test_single_client_latency_equals_service_time(self):
        result = run_fixed_capacity(constant_service(10.0), threads=4, clients=1,
                                    total_requests=50)
        assert result.completed_requests == 50
        assert result.latencies.summary().median_ms == pytest.approx(10.0)

    def test_throughput_limited_by_capacity(self):
        # 10 clients over 2 threads with 10 ms service -> ~200 requests/second.
        result = run_fixed_capacity(constant_service(10.0), threads=2, clients=10,
                                    total_requests=400)
        assert result.overall_throughput_per_s == pytest.approx(200.0, rel=0.15)

    def test_throughput_limited_by_clients_when_capacity_ample(self):
        result = run_fixed_capacity(constant_service(10.0), threads=50, clients=5,
                                    total_requests=400)
        assert result.overall_throughput_per_s == pytest.approx(500.0, rel=0.15)

    def test_queueing_raises_latency_when_oversubscribed(self):
        contended = run_fixed_capacity(constant_service(10.0), threads=1, clients=5,
                                       total_requests=100)
        uncontended = run_fixed_capacity(constant_service(10.0), threads=5, clients=5,
                                         total_requests=100)
        assert contended.latencies.summary().median_ms > \
               uncontended.latencies.summary().median_ms * 2

    def test_clients_stop_at_stop_time(self):
        sim = ClosedLoopSimulation(
            service_time_fn=constant_service(10.0),
            initial_threads=4,
            client_groups=[ClientGroup(count=4, start_ms=0.0, stop_ms=500.0)],
            max_duration_ms=2_000.0,
        )
        result = sim.run()
        # Roughly 4 clients * 50 requests in the first 500 ms, nothing after.
        assert 100 <= result.completed_requests <= 230
        late_buckets = [p for p in result.throughput_curve if p.time_s >= 1.0]
        assert all(p.requests_per_s == 0 for p in late_buckets)

    def test_policy_scale_up_takes_effect_after_delay(self):
        def policy(now_ms, metrics):
            if metrics["utilization"] >= 0.9 and metrics["capacity_threads"] < 4:
                return AutoscalerDecision(add_threads=2, add_delay_ms=1_000.0)
            return None

        sim = ClosedLoopSimulation(
            service_time_fn=constant_service(10.0),
            initial_threads=2,
            client_groups=[ClientGroup(count=8)],
            policy=policy,
            policy_interval_ms=200.0,
            max_duration_ms=4_000.0,
        )
        result = sim.run()
        capacities = [capacity for _, capacity in result.capacity_timeline]
        assert capacities[0] == 2
        assert max(capacities) >= 4

    def test_policy_scale_down(self):
        def policy(now_ms, metrics):
            if metrics["capacity_threads"] > 2:
                return AutoscalerDecision(remove_threads=2)
            return None

        sim = ClosedLoopSimulation(
            service_time_fn=constant_service(5.0),
            initial_threads=6,
            client_groups=[ClientGroup(count=2)],
            policy=policy,
            policy_interval_ms=100.0,
            max_duration_ms=1_000.0,
            min_threads=2,
        )
        result = sim.run()
        assert result.capacity_timeline[-1][1] == 2

    def test_capacity_never_drops_below_minimum(self):
        def policy(now_ms, metrics):
            return AutoscalerDecision(remove_threads=100)

        sim = ClosedLoopSimulation(
            service_time_fn=constant_service(5.0),
            initial_threads=4,
            client_groups=[ClientGroup(count=1)],
            policy=policy,
            policy_interval_ms=50.0,
            max_duration_ms=500.0,
            min_threads=3,
        )
        result = sim.run()
        assert all(capacity >= 3 for _, capacity in result.capacity_timeline)

    def test_throughput_curve_capacity_annotation(self):
        result = run_fixed_capacity(constant_service(10.0), threads=6, clients=6,
                                    total_requests=100)
        assert all(point.allocated_threads == 6 for point in result.throughput_curve)
