"""Unit tests for a single Anna storage node (tiers, stats, merge-on-put)."""

import pytest

from repro.errors import KeyNotFoundError
from repro.lattices import LWWLattice, MaxIntLattice, Timestamp
from repro.anna import StorageNode


def lww(value, clock=1.0, node="n"):
    return LWWLattice(Timestamp(clock, node), value)


class TestStorageNodeBasics:
    def test_put_then_get(self):
        node = StorageNode("s1")
        node.put("k", lww("v"))
        assert node.get("k").reveal() == "v"
        assert node.contains("k")

    def test_get_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            StorageNode("s1").get("ghost")

    def test_put_merges_with_existing(self):
        node = StorageNode("s1")
        node.put("counter", MaxIntLattice(3))
        node.put("counter", MaxIntLattice(1))
        assert node.get("counter").reveal() == 3

    def test_delete(self):
        node = StorageNode("s1")
        node.put("k", lww("v"))
        assert node.delete("k")
        assert not node.contains("k")
        assert not node.delete("k")

    def test_key_counts(self):
        node = StorageNode("s1")
        node.put("a", lww(1))
        node.put("b", lww(2))
        assert node.key_count() == 2
        assert sorted(node.keys()) == ["a", "b"]

    def test_drain_clears_everything(self):
        node = StorageNode("s1")
        node.put("a", lww(1))
        drained = node.drain()
        assert set(drained) == {"a"}
        assert node.key_count() == 0


class TestTiering:
    def test_new_keys_land_in_memory(self):
        node = StorageNode("s1")
        node.put("k", lww("v"))
        assert node.tier_of("k") == StorageNode.MEMORY_TIER

    def test_demote_and_promote(self):
        node = StorageNode("s1")
        node.put("k", lww("v"))
        assert node.demote("k")
        assert node.tier_of("k") == StorageNode.DISK_TIER
        assert node.get("k").reveal() == "v"
        assert node.promote("k")
        assert node.tier_of("k") == StorageNode.MEMORY_TIER

    def test_demote_missing_key_is_false(self):
        assert not StorageNode("s1").demote("ghost")

    def test_put_to_demoted_key_stays_on_disk(self):
        node = StorageNode("s1")
        node.put("k", MaxIntLattice(1))
        node.demote("k")
        node.put("k", MaxIntLattice(5))
        assert node.tier_of("k") == StorageNode.DISK_TIER
        assert node.get("k").reveal() == 5

    def test_memory_capacity_enforced_on_insert(self):
        # Regression: a burst of fresh keys used to overfill the memory tier
        # until the next autoscaler tick.  Now the coldest resident key is
        # demoted to disk on insert, and the demotion is counted.
        node = StorageNode("s1", memory_capacity_keys=2)
        node.put("k0", lww(0), now_ms=1.0)
        node.put("k1", lww(1), now_ms=2.0)
        node.put("k2", lww(2), now_ms=3.0)
        assert not node.over_memory_capacity()
        assert node.memory_key_count() == 2
        assert node.demotions == 1
        # The coldest key moved to disk; nothing was lost.
        assert node.tier_of("k0") == StorageNode.DISK_TIER
        for index in range(3):
            assert node.get(f"k{index}").reveal() == index

    def test_capacity_pressure_never_drops_data(self):
        node = StorageNode("s1", memory_capacity_keys=3)
        for index in range(20):
            node.put(f"k{index}", lww(index), now_ms=float(index))
        assert node.memory_key_count() == 3
        assert node.key_count() == 20
        assert node.demotions == 17

    def test_merge_to_existing_key_does_not_demote(self):
        from repro.lattices import MaxIntLattice

        node = StorageNode("s1", memory_capacity_keys=2)
        node.put("a", MaxIntLattice(1), now_ms=1.0)
        node.put("b", MaxIntLattice(1), now_ms=2.0)
        node.put("a", MaxIntLattice(5), now_ms=3.0)  # merge, not a fresh insert
        assert node.demotions == 0
        assert node.memory_key_count() == 2

    def test_coldest_memory_keys_ordered_by_access_time(self):
        node = StorageNode("s1")
        node.put("old", lww(1), now_ms=1.0)
        node.put("new", lww(2), now_ms=100.0)
        node.get("old", now_ms=500.0)
        assert node.coldest_memory_keys(1) == ["new"]


class TestStats:
    def test_reads_and_writes_counted(self):
        node = StorageNode("s1")
        node.put("k", lww(1))
        node.get("k")
        node.get("k")
        stats = node.stats("k")
        assert stats.writes == 1
        assert stats.reads == 2
        assert stats.accesses == 3

    def test_hot_keys_threshold(self):
        node = StorageNode("s1")
        node.put("hot", lww(1))
        for _ in range(10):
            node.get("hot")
        node.put("cold", lww(2))
        assert node.hot_keys(min_accesses=5) == ["hot"]
