"""Unit tests for vector clocks."""

import pytest

from repro.lattices import VectorClock


class TestVectorClockBasics:
    def test_zero_entries_are_dropped(self):
        clock = VectorClock({"a": 0, "b": 2})
        assert clock.reveal() == {"b": 2}
        assert len(clock) == 1

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            VectorClock({"a": -1})

    def test_increment_is_functional(self):
        base = VectorClock()
        bumped = base.increment("node")
        assert base.get("node") == 0
        assert bumped.get("node") == 1

    def test_merge_takes_pairwise_max(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"x": 1, "z": 2})
        merged = a.merge(b)
        assert merged.reveal() == {"x": 3, "y": 1, "z": 2}


class TestVectorClockOrdering:
    def test_dominates(self):
        newer = VectorClock({"a": 2, "b": 1})
        older = VectorClock({"a": 1, "b": 1})
        assert newer.dominates(older)
        assert not older.dominates(newer)

    def test_equal_clocks_do_not_dominate(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"a": 1})
        assert not a.dominates(b)
        assert a.dominates_or_equal(b)

    def test_concurrent(self):
        a = VectorClock({"a": 1})
        b = VectorClock({"b": 1})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)
        assert not a.dominates(b)

    def test_happened_before(self):
        older = VectorClock({"a": 1})
        newer = older.increment("a").increment("b")
        assert older.happened_before(newer)
        assert not newer.happened_before(older)

    def test_empty_clock_is_dominated_by_any_nonempty_clock(self):
        assert VectorClock({"a": 1}).dominates(VectorClock())

    def test_concurrency_is_not_reflexive(self):
        clock = VectorClock({"a": 1})
        assert not clock.concurrent_with(clock)


class TestVectorClockSizing:
    def test_size_counts_entries(self):
        clock = VectorClock({"node-1": 5, "node-22": 1})
        assert clock.size_bytes() == len("node-1") + 8 + len("node-22") + 8

    def test_size_grows_with_writers(self):
        small = VectorClock({"a": 1})
        big = small
        for index in range(10):
            big = big.increment(f"writer-{index}")
        assert big.size_bytes() > small.size_bytes()
