"""Unit tests for the workload generators."""

import pytest

from repro.workloads import (
    ARRAYS_PER_REQUEST,
    ConsistencyWorkload,
    ELEMENTS_PER_ARRAY,
    FIGURE5_TOTAL_SIZES,
    LocalityWorkloadKeys,
    SocialWorkloadGenerator,
    make_arrays,
    sum_arrays,
    total_bytes,
)
from repro.workloads.dags import sink_write, string_manipulation


class TestArrayWorkload:
    def test_figure5_sizes_cover_paper_range(self):
        assert FIGURE5_TOTAL_SIZES == ("80KB", "800KB", "8MB", "80MB")
        assert ELEMENTS_PER_ARRAY["80KB"] == 1_000
        assert ELEMENTS_PER_ARRAY["80MB"] == 1_000_000

    def test_make_arrays_shape_and_total_bytes(self):
        arrays = make_arrays("80KB")
        assert len(arrays) == ARRAYS_PER_REQUEST
        assert all(a.size == 1_000 for a in arrays)
        assert total_bytes("80KB") == 80_000

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            make_arrays("1GB")

    def test_sum_arrays_correct(self):
        arrays = make_arrays("80KB", seed=3)
        expected = sum(float(a.sum()) for a in arrays)
        assert sum_arrays(*arrays) == pytest.approx(expected)

    def test_key_helpers(self):
        shared = LocalityWorkloadKeys.shared("8MB")
        per_request = LocalityWorkloadKeys.for_request("8MB", 7)
        assert len(shared.keys) == ARRAYS_PER_REQUEST
        assert shared.keys != per_request.keys
        assert all("req7" in key for key in per_request.keys)


class TestConsistencyWorkload:
    def test_functions_produce_strings(self):
        class FakeLibrary:
            def put(self, key, value):
                self.written = (key, value)

        assert isinstance(string_manipulation(None, "a", "b"), str)
        library = FakeLibrary()
        result = sink_write(library, "x", "y", "target-key")
        assert library.written[0] == "target-key"
        assert library.written[1] == result

    def test_sample_request_reads_then_sink_writes_a_read_key(self):
        workload = ConsistencyWorkload(key_count=100, dag_count=5, seed=1)
        from repro.cloudburst import Dag

        dag = Dag.chain("d", ["f1", "f2", "f3"])
        function_args, sink_key = workload.sample_request(dag)
        read_keys = [ref.key for args in function_args.values()
                     for ref in args if hasattr(ref, "key")]
        assert sink_key in read_keys
        # The sink's final argument is the key it must write.
        assert function_args["f3"][-1] == sink_key

    def test_key_sampling_respects_populated_range(self):
        workload = ConsistencyWorkload(key_count=1_000_000, dag_count=1, seed=2)
        workload._available_keys = 50
        indices = {workload._sample_key_index() for _ in range(500)}
        assert all(index < 50 for index in indices)

    def test_zipf_skew_in_sampling(self):
        workload = ConsistencyWorkload(key_count=1_000, dag_count=1, seed=3)
        draws = [workload._sample_key_index() for _ in range(2_000)]
        assert draws.count(0) > draws.count(500)


class TestSocialWorkload:
    def test_graph_shape(self):
        generator = SocialWorkloadGenerator(user_count=50, followees_per_user=10,
                                            seed_tweet_count=100, seed=1)
        graph = generator.build_graph()
        assert graph.user_count == 50
        assert all(len(followees) == 10 for followees in graph.follows.values())
        assert all(user not in followees
                   for user, followees in graph.follows.items())
        assert len(graph.seed_tweets) == 100

    def test_roughly_half_of_seed_tweets_are_replies(self):
        generator = SocialWorkloadGenerator(user_count=50, seed_tweet_count=400, seed=2)
        graph = generator.build_graph()
        replies = sum(1 for _, _, parent in graph.seed_tweets if parent is not None)
        assert 100 < replies < 300

    def test_followers_of_inverts_follow_edges(self):
        generator = SocialWorkloadGenerator(user_count=20, followees_per_user=3, seed=3)
        graph = generator.build_graph()
        some_user = graph.users[0]
        for follower in graph.followers_of(some_user):
            assert some_user in graph.follows[follower]

    def test_request_stream_mix(self):
        generator = SocialWorkloadGenerator(user_count=50, write_fraction=0.1, seed=4)
        stream = generator.request_stream(1_000)
        posts = sum(1 for request in stream if request.kind == "post")
        assert 50 < posts < 200
        assert all(request.kind in ("post", "timeline") for request in stream)

    def test_popular_users_receive_more_follows(self):
        generator = SocialWorkloadGenerator(user_count=100, followees_per_user=10,
                                            zipf_coefficient=1.5, seed=5)
        graph = generator.build_graph()
        follower_counts = [len(graph.followers_of(user)) for user in graph.users]
        assert max(follower_counts) > 3 * (sum(follower_counts) / len(follower_counts))
